"""An interpreter for mini-language ASTs.

Used to verify the whole compile -> assemble -> disassemble -> decompile
pipeline *semantically*: a source function and its decompiled counterpart
must compute the same outputs on the same inputs, on every architecture.
(The decompiled AST differs syntactically -- ``for`` vs ``while``, compound
assignments, flipped comparisons -- but must be behaviourally identical.)

Semantics:

* integers are unbounded Python ints (the compiler performs no
  wrapping, so source and decompiled evaluation agree exactly);
* division truncates toward zero (C semantics);
* string literals evaluate to a deterministic integer (their "address"),
  stable across source and decompiled forms;
* calls resolve by name against a function environment.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Sequence

from repro.lang.nodes import FunctionDef, Node, Ops


class InterpError(Exception):
    """Raised on unsupported constructs or runaway execution."""


class _Return(Exception):
    def __init__(self, value: int):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def string_value(text: str) -> int:
    """Deterministic integer stand-in for a string literal's address."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


_BINARY = {
    Ops.ADD: lambda a, b: a + b,
    Ops.SUB: lambda a, b: a - b,
    Ops.MUL: lambda a, b: a * b,
    Ops.DIV: _c_div,
    Ops.AND: lambda a, b: a & b,
    Ops.OR: lambda a, b: a | b,
    Ops.XOR: lambda a, b: a ^ b,
}

_COMPARE = {
    Ops.EQ: lambda a, b: a == b,
    Ops.NE: lambda a, b: a != b,
    Ops.GT: lambda a, b: a > b,
    Ops.LT: lambda a, b: a < b,
    Ops.GE: lambda a, b: a >= b,
    Ops.LE: lambda a, b: a <= b,
}

_COMPOUND = {
    Ops.ASG_OR: Ops.OR,
    Ops.ASG_XOR: Ops.XOR,
    Ops.ASG_AND: Ops.AND,
    Ops.ASG_ADD: Ops.ADD,
    Ops.ASG_SUB: Ops.SUB,
    Ops.ASG_MUL: Ops.MUL,
    Ops.ASG_DIV: Ops.DIV,
}


class Interpreter:
    """Evaluates function bodies against a callee environment."""

    def __init__(
        self,
        functions: Optional[Iterable[FunctionDef]] = None,
        max_steps: int = 200_000,
    ):
        self.functions: Dict[str, FunctionDef] = {
            fn.name: fn for fn in (functions or ())
        }
        self.max_steps = max_steps
        self._steps = 0

    def register(self, fn: FunctionDef) -> None:
        self.functions[fn.name] = fn

    # -- public -------------------------------------------------------------

    def call(self, name: str, args: Sequence[int]) -> int:
        """Call a registered function by name."""
        try:
            fn = self.functions[name]
        except KeyError:
            raise InterpError(f"undefined function {name!r}") from None
        return self.run(fn, args)

    def run(self, fn: FunctionDef, args: Sequence[int]) -> int:
        """Execute a function definition with positional integer arguments."""
        if len(args) != len(fn.params):
            raise InterpError(
                f"{fn.name} expects {len(fn.params)} args, got {len(args)}"
            )
        self._steps = 0
        env: Dict[str, int] = dict(zip(fn.params, (int(a) for a in args)))
        try:
            self._exec(fn.body, env)
        except _Return as ret:
            return ret.value
        return 0

    def run_body(self, body: Node, params: Dict[str, int]) -> int:
        """Execute a bare body AST (used for decompiled functions, whose
        parameter names are positional ``a0``, ``a1``, ...)."""
        self._steps = 0
        env = dict(params)
        try:
            self._exec(body, env)
        except _Return as ret:
            return ret.value
        return 0

    # -- statements -----------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise InterpError("execution did not terminate within step budget")

    def _exec(self, node: Node, env: Dict[str, int]) -> None:
        self._tick()
        op = node.op
        if op == Ops.BLOCK:
            for child in node.children:
                self._exec(child, env)
            return
        if op == Ops.IF:
            if self._truthy(node.children[0], env):
                self._exec(node.children[1], env)
            elif len(node.children) == 3:
                self._exec(node.children[2], env)
            return
        if op == Ops.WHILE:
            while self._truthy(node.children[0], env):
                self._tick()
                try:
                    self._exec(node.children[1], env)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if op == Ops.FOR:
            init, cond, step, body = node.children
            self._exec(init, env)
            while self._truthy(cond, env):
                self._tick()
                try:
                    self._exec(body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                self._exec(step, env)
            return
        if op == Ops.RETURN:
            value = self._eval(node.children[0], env) if node.children else 0
            raise _Return(value)
        if op == Ops.BREAK:
            raise _Break()
        if op == Ops.CONTINUE:
            raise _Continue()
        if op == Ops.ASG:
            target = node.children[0]
            if target.op != Ops.VAR:
                raise InterpError("only variable assignment targets supported")
            env[target.value] = self._eval(node.children[1], env)
            return
        if op in _COMPOUND:
            target = node.children[0]
            if target.op != Ops.VAR:
                raise InterpError("only variable assignment targets supported")
            current = self._read_var(target.value, env)
            rhs = self._eval(node.children[1], env)
            env[target.value] = _BINARY[_COMPOUND[op]](current, rhs)
            return
        if op == Ops.CALL:
            self._eval(node, env)  # call for side effect / discard result
            return
        if op == Ops.SWITCH:
            # children: scrutinee, then alternating (num, block) pairs; the
            # lowering gives each case an implicit break (no fallthrough).
            value = self._eval(node.children[0], env)
            cases = node.children[1:]
            for i in range(0, len(cases), 2):
                if self._eval(cases[i], env) == value:
                    try:
                        self._exec(cases[i + 1], env)
                    except _Break:
                        pass
                    return
            return
        raise InterpError(f"unsupported statement op {op!r}")

    # -- expressions ------------------------------------------------------------

    def _read_var(self, name: str, env: Dict[str, int]) -> int:
        try:
            return env[name]
        except KeyError:
            raise InterpError(f"read of unassigned variable {name!r}") from None

    def _truthy(self, node: Node, env: Dict[str, int]) -> bool:
        return self._eval(node, env) != 0

    def _eval(self, node: Node, env: Dict[str, int]) -> int:
        self._tick()
        op = node.op
        if op == Ops.VAR:
            return self._read_var(node.value, env)
        if op == Ops.NUM:
            return int(node.value)
        if op == Ops.STR:
            return string_value(node.value)
        if op in _BINARY:
            lhs = self._eval(node.children[0], env)
            rhs = self._eval(node.children[1], env)
            return _BINARY[op](lhs, rhs)
        if op in _COMPARE:
            lhs = self._eval(node.children[0], env)
            rhs = self._eval(node.children[1], env)
            return 1 if _COMPARE[op](lhs, rhs) else 0
        if op == Ops.NEG:
            return -self._eval(node.children[0], env)
        if op == Ops.NOT:
            return ~self._eval(node.children[0], env)
        if op == Ops.LNOT:
            return 0 if self._truthy(node.children[0], env) else 1
        if op == Ops.LAND:
            return 1 if (self._truthy(node.children[0], env)
                         and self._truthy(node.children[1], env)) else 0
        if op == Ops.LOR:
            return 1 if (self._truthy(node.children[0], env)
                         or self._truthy(node.children[1], env)) else 0
        if op == Ops.CALL:
            args = [self._eval(a, env) for a in node.children]
            return self.call(node.value, args)
        raise InterpError(f"unsupported expression op {op!r}")


def run_decompiled(
    interpreter: Interpreter, body: Node, n_params: int, args: Sequence[int]
) -> int:
    """Run a decompiled body whose params are ``a0 .. a{n-1}``."""
    if len(args) != n_params:
        raise InterpError(f"expected {n_params} args, got {len(args)}")
    params = {f"a{i}": int(v) for i, v in enumerate(args)}
    return interpreter.run_body(body, params)
