"""Multi-target compiler for the mini language.

Lowers :mod:`repro.lang` ASTs to a three-address IR and performs per-ISA
instruction selection for four targets (x86, x64, ARM, PPC) -- the four
architectures the paper's Hex-Rays setup supports.  The point of this
substrate is to manufacture *semantically equivalent, syntactically
divergent* binaries: the same source function compiles to visibly different
assembly (two-operand vs three-operand forms, stack vs register argument
passing, ARM predication collapsing branches), which is exactly the
cross-platform variation Asteria must see through.
"""

from repro.compiler.ir import IRFunction, Lowerer
from repro.compiler.isa import ISA, get_isa, SUPPORTED_ARCHES
from repro.compiler.codegen import AsmFunction, Instruction, select_instructions
from repro.compiler.optimizer import inline_small_functions, fold_constants
from repro.compiler.cfg import ControlFlowGraph, build_cfg

__all__ = [
    "IRFunction",
    "Lowerer",
    "ISA",
    "get_isa",
    "SUPPORTED_ARCHES",
    "AsmFunction",
    "Instruction",
    "select_instructions",
    "inline_small_functions",
    "fold_constants",
    "ControlFlowGraph",
    "build_cfg",
    # lazily resolved (they pull in repro.binformat, which imports back
    # into repro.compiler.codegen -- eager import would be circular):
    "CompilationOptions",
    "compile_package",
    "compile_function",
    "cross_compile",
]

_LAZY = {"CompilationOptions", "compile_package", "compile_function",
         "cross_compile"}


def __getattr__(name):
    if name in _LAZY:
        from repro.compiler import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
