"""Per-architecture instruction selection.

Translates :class:`~repro.compiler.ir.IRFunction` into symbolic assembly for
one of the four target ISAs.  The backends intentionally produce the code
styles of real unoptimised compilers:

* **x86/x64** -- every variable lives in a frame slot; ALU ops are
  two-operand accumulator sequences (``mov eax, [ebp-8]; add eax, ecx;
  mov [ebp-8], eax``); x86 passes arguments on the stack, x64 in registers.
* **ARM** -- variables are homed in ``r4``-``r11``; three-operand ALU ops;
  small if/else diamonds are *predicated* (``cmp; movle ...; movgt ...``),
  which merges basic blocks exactly as in the paper's Figure 2.
* **PPC** -- variables homed in ``r14``-``r30``; distinct mnemonic set
  (``li``/``mr``/``lwz``/``stw``/``subf``); immediate forms ``addi``/``cmpwi``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.compiler import ir as IR
from repro.compiler.isa import ISA, get_isa
from repro.compiler.regalloc import ScratchAllocator
from repro.lang.nodes import NEGATED_COMPARISON, Ops

# -- assembly-level operands ---------------------------------------------------


@dataclass(frozen=True)
class Reg:
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AImm:
    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Mem:
    """A base+offset memory operand (frame slot)."""

    base: str
    offset: int

    def __str__(self) -> str:
        sign = "+" if self.offset >= 0 else "-"
        return f"[{self.base}{sign}{abs(self.offset)}]"


@dataclass(frozen=True)
class Lab:
    """A branch target (intra-function label)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sym:
    """A call target (function symbol)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SRef:
    """A string-literal reference (pooled into the binary)."""

    text: str

    def __str__(self) -> str:
        return f'"{self.text}"'


AsmOperand = Union[Reg, AImm, Mem, Lab, Sym, SRef]

_CC_NAMES = {
    Ops.EQ: "eq",
    Ops.NE: "ne",
    Ops.GT: "gt",
    Ops.LT: "lt",
    Ops.GE: "ge",
    Ops.LE: "le",
}
_CC_TO_OP = {v: k for k, v in _CC_NAMES.items()}


@dataclass(frozen=True)
class Instruction:
    """One assembly instruction.

    ``cond`` is the ARM-style predication suffix ("" = always execute);
    conditional *branches* carry their condition in the mnemonic instead.
    """

    mnemonic: str
    operands: Tuple[AsmOperand, ...] = ()
    cond: str = ""

    def render(self) -> str:
        ops = ", ".join(str(o) for o in self.operands)
        name = f"{self.mnemonic}{self.cond}"
        return f"{name} {ops}".rstrip()

    def __str__(self) -> str:
        return self.render()


@dataclass
class FrameInfo:
    """What a decompiler would infer about the stack frame."""

    n_params: int
    n_locals: int


@dataclass
class AsmFunction:
    """Selected instructions for one function on one architecture."""

    name: str
    arch: str
    frame: FrameInfo
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def callee_names(self) -> Tuple[str, ...]:
        isa = get_isa(self.arch)
        return tuple(
            instr.operands[0].name
            for instr in self.instructions
            if instr.mnemonic == isa.call and isinstance(instr.operands[0], Sym)
        )

    def string_literals(self) -> Tuple[str, ...]:
        out = []
        for instr in self.instructions:
            for operand in instr.operands:
                if isinstance(operand, SRef):
                    out.append(operand.text)
        return tuple(out)

    def render(self) -> str:
        index_to_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        lines = [f"{self.name}: ; arch={self.arch}"]
        for i, instr in enumerate(self.instructions):
            for label in index_to_labels.get(i, ()):
                lines.append(f"{label}:")
            lines.append(f"    {instr.render()}")
        for label in index_to_labels.get(len(self.instructions), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)


class CodegenError(Exception):
    """Raised when the IR uses shapes a backend cannot express."""


# -- shared machinery ----------------------------------------------------------


class _Backend:
    """Common driver: walks IR instructions and dispatches to hooks."""

    def __init__(self, isa: ISA):
        self.isa = isa
        self.out: List[Instruction] = []
        self.labels: Dict[str, int] = {}

    def emit(self, mnemonic: str, *operands: AsmOperand, cond: str = "") -> None:
        self.out.append(Instruction(mnemonic, tuple(operands), cond))

    def place_label(self, name: str) -> None:
        self.labels[name] = len(self.out)

    def generate(self, ir: IR.IRFunction) -> AsmFunction:
        raise NotImplementedError


# -- x86 / x64 -----------------------------------------------------------------


class X86Backend(_Backend):
    """Two-operand, stack-slot backend shared by x86 and x64."""

    def __init__(self, isa: ISA):
        super().__init__(isa)
        self.word = isa.word_size
        self.acc = isa.scratch_registers[0]  # eax / rax
        self.aux = isa.scratch_registers[1]  # ecx / rcx
        self._ir: Optional[IR.IRFunction] = None
        self._temp_slots: Dict[int, int] = {}

    # frame layout ------------------------------------------------------------

    def _param_loc(self, index: int) -> Mem:
        if self.isa.name == "x86":
            # caller-pushed: above the saved ebp + return address
            return Mem(self.isa.frame_pointer, 2 * self.word + index * self.word)
        # x64: spilled from argument registers into the local area
        return Mem(self.isa.frame_pointer, -(index + 1) * self.word)

    def _local_loc(self, index: int) -> Mem:
        base = 0 if self.isa.name == "x86" else len(self._ir.params)
        return Mem(self.isa.frame_pointer, -(base + index + 1) * self.word)

    def _temp_loc(self, temp: IR.Temp) -> Mem:
        base = len(self._ir.local_vars)
        if self.isa.name != "x86":
            base += len(self._ir.params)
        slot = self._temp_slots.setdefault(temp.index, len(self._temp_slots))
        return Mem(self.isa.frame_pointer, -(base + slot + 1) * self.word)

    def _var_loc(self, name: str) -> Mem:
        if name in self._ir.params:
            return self._param_loc(self._ir.params.index(name))
        if name in self._ir.local_vars:
            return self._local_loc(self._ir.local_vars.index(name))
        raise CodegenError(f"unknown variable {name!r}")

    def _loc(self, operand: IR.Operand) -> AsmOperand:
        if isinstance(operand, IR.Var):
            return self._var_loc(operand.name)
        if isinstance(operand, IR.Temp):
            return self._temp_loc(operand)
        if isinstance(operand, IR.Imm):
            return AImm(operand.value)
        if isinstance(operand, IR.StrLit):
            return SRef(operand.text)
        raise CodegenError(f"unsupported operand {operand!r}")

    def _dst_loc(self, dst: IR.Dest) -> Mem:
        loc = self._loc(dst)
        assert isinstance(loc, Mem)
        return loc

    # generation -----------------------------------------------------------------

    def generate(self, ir: IR.IRFunction) -> AsmFunction:
        self._ir = ir
        self._temp_slots = {}
        fp, sp = self.isa.frame_pointer, self.isa.stack_pointer
        self.emit("push", Reg(fp))
        self.emit("mov", Reg(fp), Reg(sp))
        # Reserve a generous frame; exact size is irrelevant to our container.
        frame_words = len(ir.local_vars) + len(ir.params) + 8
        self.emit("sub", Reg(sp), AImm(frame_words * self.word))
        if self.isa.name == "x64":
            for i, _param in enumerate(ir.params):
                if i >= len(self.isa.arg_registers):
                    raise CodegenError("x64 backend supports register args only")
                self.emit("mov", self._param_loc(i), Reg(self.isa.arg_registers[i]))
        for index, instr in enumerate(ir.instructions):
            self._instr(instr, index)
        return AsmFunction(
            name=ir.name,
            arch=self.isa.name,
            frame=FrameInfo(len(ir.params), len(ir.local_vars)),
            instructions=self.out,
            labels=self.labels,
        )

    def _load_acc(self, operand: IR.Operand) -> None:
        self.emit("mov", Reg(self.acc), self._loc(operand))

    def _instr(self, instr: IR.IRInstr, index: int) -> None:
        if isinstance(instr, IR.Label):
            self.place_label(instr.name)
        elif isinstance(instr, IR.Move):
            loc = self._loc(instr.src)
            if isinstance(loc, (AImm, SRef)):
                self.emit("mov", self._dst_loc(instr.dst), loc)
            else:
                self._load_acc(instr.src)
                self.emit("mov", self._dst_loc(instr.dst), Reg(self.acc))
        elif isinstance(instr, IR.BinOp):
            self._load_acc(instr.lhs)
            rhs_loc = self._loc(instr.rhs)
            mnemonic = self.isa.alu[instr.op]
            if isinstance(rhs_loc, AImm):
                self.emit(mnemonic, Reg(self.acc), rhs_loc)
            else:
                self.emit("mov", Reg(self.aux), rhs_loc)
                self.emit(mnemonic, Reg(self.acc), Reg(self.aux))
            self.emit("mov", self._dst_loc(instr.dst), Reg(self.acc))
        elif isinstance(instr, IR.UnOp):
            self._load_acc(instr.src)
            self.emit(self.isa.alu[instr.op], Reg(self.acc))
            self.emit("mov", self._dst_loc(instr.dst), Reg(self.acc))
        elif isinstance(instr, IR.CondJump):
            self._load_acc(instr.lhs)
            rhs_loc = self._loc(instr.rhs)
            op = instr.op
            if isinstance(rhs_loc, AImm):
                if self.isa.name == "x86":
                    # Classic x86 idiom: normalise strict comparisons against
                    # immediates (x < k  ==>  x <= k-1).  This is why the
                    # paper's Figure 1 shows an `le` node for source `v < 1`.
                    if op == Ops.LT:
                        op, rhs_loc = Ops.LE, AImm(rhs_loc.value - 1)
                    elif op == Ops.GE:
                        op, rhs_loc = Ops.GT, AImm(rhs_loc.value - 1)
                self.emit("cmp", Reg(self.acc), rhs_loc)
            else:
                self.emit("mov", Reg(self.aux), rhs_loc)
                self.emit("cmp", Reg(self.acc), Reg(self.aux))
            self.emit(self.isa.branches[op], Lab(instr.target))
        elif isinstance(instr, IR.Jump):
            self.emit("jmp", Lab(instr.target))
        elif isinstance(instr, IR.Call):
            self._call(instr)
        elif isinstance(instr, IR.Ret):
            if instr.value is not None:
                loc = self._loc(instr.value)
                if isinstance(loc, (AImm, SRef)):
                    self.emit("mov", Reg(self.acc), loc)
                else:
                    self._load_acc(instr.value)
            self.emit("leave")
            self.emit("ret")
        else:  # pragma: no cover - exhaustive over IR types
            raise CodegenError(f"unhandled IR instruction {instr!r}")

    def _call(self, instr: IR.Call) -> None:
        if self.isa.name == "x86":
            for arg in reversed(instr.args):
                loc = self._loc(arg)
                if isinstance(loc, Mem):
                    self._load_acc(arg)
                    self.emit("push", Reg(self.acc))
                else:
                    self.emit("push", loc)
            self.emit("call", Sym(instr.func))
            if instr.args:
                self.emit(
                    "add", Reg(self.isa.stack_pointer),
                    AImm(len(instr.args) * self.word),
                )
        else:
            if len(instr.args) > len(self.isa.arg_registers):
                raise CodegenError("too many call arguments for x64 backend")
            for i, arg in enumerate(instr.args):
                self.emit("mov", Reg(self.isa.arg_registers[i]), self._loc(arg))
            self.emit("call", Sym(instr.func))
        if instr.dst is not None:
            self.emit("mov", self._dst_loc(instr.dst), Reg(self.acc))


# -- RISC common -----------------------------------------------------------------


class _RiscBackend(_Backend):
    """Shared logic for register-homed, three-operand backends."""

    transient: Tuple[str, ...] = ()
    temp_pool: Tuple[str, ...] = ()

    def __init__(self, isa: ISA):
        super().__init__(isa)
        self._ir: Optional[IR.IRFunction] = None
        self._var_homes: Dict[str, Union[Reg, Mem]] = {}
        self._alloc: Optional[ScratchAllocator] = None

    # layout --------------------------------------------------------------------

    def _assign_var_homes(self, ir: IR.IRFunction) -> None:
        self._var_homes = {}
        overflow = 0
        for i, name in enumerate(ir.variables()):
            if i < len(self.isa.var_registers):
                self._var_homes[name] = Reg(self.isa.var_registers[i])
            else:
                overflow += 1
                self._var_homes[name] = Mem(
                    self.isa.frame_pointer, -overflow * self.isa.word_size
                )

    def _home(self, name: str) -> Union[Reg, Mem]:
        try:
            return self._var_homes[name]
        except KeyError:
            raise CodegenError(f"unknown variable {name!r}") from None

    # operand handling ----------------------------------------------------------

    def _read_reg(self, operand: IR.Operand, transient_index: int = 0) -> Reg:
        """Bring an operand into a register (transient load if needed)."""
        if isinstance(operand, IR.Var):
            home = self._home(operand.name)
            if isinstance(home, Reg):
                return home
            reg = Reg(self.transient[transient_index])
            self.emit(self.isa.load, reg, home)
            return reg
        if isinstance(operand, IR.Temp):
            return Reg(self._alloc.location(operand))
        if isinstance(operand, IR.Imm):
            reg = Reg(self.transient[transient_index])
            self._load_immediate(reg, operand.value)
            return reg
        if isinstance(operand, IR.StrLit):
            reg = Reg(self.transient[transient_index])
            self.emit(self.isa.load_imm, reg, SRef(operand.text))
            return reg
        raise CodegenError(f"unsupported operand {operand!r}")

    def _load_immediate(self, reg: Reg, value: int) -> None:
        self.emit(self.isa.load_imm, reg, AImm(value))

    def _dest_reg(self, dst: IR.Dest) -> Tuple[Reg, Optional[Mem]]:
        """Register to compute into, plus a store-back slot if var is spilled."""
        if isinstance(dst, IR.Temp):
            return Reg(self._alloc.define(dst)), None
        home = self._home(dst.name)
        if isinstance(home, Reg):
            return home, None
        return Reg(self.transient[0]), home

    def _release(self, instr: IR.IRInstr, index: int) -> None:
        from repro.compiler.regalloc import instruction_reads

        for operand in instruction_reads(instr):
            if isinstance(operand, IR.Temp):
                self._alloc.release_after_use(operand, index)

    # generation ------------------------------------------------------------------

    def generate(self, ir: IR.IRFunction) -> AsmFunction:
        self._ir = ir
        self._assign_var_homes(ir)
        self._alloc = ScratchAllocator(self.temp_pool, ir)
        self._prologue(ir)
        self._body(ir)
        return AsmFunction(
            name=ir.name,
            arch=self.isa.name,
            frame=FrameInfo(len(ir.params), len(ir.local_vars)),
            instructions=self.out,
            labels=self.labels,
        )

    def _body(self, ir: IR.IRFunction) -> None:
        for index, instr in enumerate(ir.instructions):
            self._instr(instr, index)
            self._release(instr, index)

    def _prologue(self, ir: IR.IRFunction) -> None:
        raise NotImplementedError

    def _epilogue(self) -> None:
        raise NotImplementedError

    def _instr(self, instr: IR.IRInstr, index: int) -> None:
        if isinstance(instr, IR.Label):
            self.place_label(instr.name)
        elif isinstance(instr, IR.Move):
            self._move(instr)
        elif isinstance(instr, IR.BinOp):
            self._binop(instr)
        elif isinstance(instr, IR.UnOp):
            self._unop(instr)
        elif isinstance(instr, IR.CondJump):
            self._compare(instr.lhs, instr.rhs)
            self.emit(self.isa.branches[instr.op], Lab(instr.target))
        elif isinstance(instr, IR.Jump):
            self.emit(self.isa.jump, Lab(instr.target))
        elif isinstance(instr, IR.Call):
            self._call(instr)
        elif isinstance(instr, IR.Ret):
            self._ret(instr)
        else:  # pragma: no cover
            raise CodegenError(f"unhandled IR instruction {instr!r}")

    def _store_back(self, reg: Reg, slot: Optional[Mem]) -> None:
        if slot is not None:
            self.emit(self.isa.store, reg, slot)

    def _move(self, instr: IR.Move) -> None:
        dst, slot = self._dest_reg(instr.dst)
        if isinstance(instr.src, IR.Imm):
            self._load_immediate(dst, instr.src.value)
        elif isinstance(instr.src, IR.StrLit):
            self.emit(self.isa.load_imm, dst, SRef(instr.src.text))
        else:
            src = self._read_reg(instr.src, 1)
            if src != dst:
                self.emit(self.isa.move, dst, src)
        self._store_back(dst, slot)

    def _binop(self, instr: IR.BinOp) -> None:
        raise NotImplementedError

    def _unop(self, instr: IR.UnOp) -> None:
        raise NotImplementedError

    def _compare(self, lhs: IR.Operand, rhs: IR.Operand) -> None:
        raise NotImplementedError

    def _call(self, instr: IR.Call) -> None:
        # Load arguments into the argument registers, then branch-and-link.
        if len(instr.args) > len(self.isa.arg_registers):
            raise CodegenError(
                f"too many call arguments for {self.isa.name} backend"
            )
        for i, arg in enumerate(instr.args):
            target = Reg(self.isa.arg_registers[i])
            if isinstance(arg, IR.Imm):
                self._load_immediate(target, arg.value)
            elif isinstance(arg, IR.StrLit):
                self.emit(self.isa.load_imm, target, SRef(arg.text))
            else:
                source = self._read_reg(arg, 1)
                if source != target:
                    self.emit(self.isa.move, target, source)
        self._alloc.assert_no_live_temps(f"call to {instr.func}")
        self.emit(self.isa.call, Sym(instr.func))
        if instr.dst is not None:
            dst, slot = self._dest_reg(instr.dst)
            result = Reg(self.isa.return_register)
            if dst != result:
                self.emit(self.isa.move, dst, result)
            self._store_back(dst, slot)

    def _ret(self, instr: IR.Ret) -> None:
        result = Reg(self.isa.return_register)
        if instr.value is not None:
            if isinstance(instr.value, IR.Imm):
                self._load_immediate(result, instr.value.value)
            else:
                source = self._read_reg(instr.value, 0)
                if source != result:
                    self.emit(self.isa.move, result, source)
        self._epilogue()


# -- ARM -------------------------------------------------------------------------


class ARMBackend(_RiscBackend):
    transient = ("r0", "r1")
    temp_pool = ("r2", "r3", "r12")

    def _prologue(self, ir: IR.IRFunction) -> None:
        self.emit("push", Reg("fp"), Reg("lr"))
        self.emit("mov", Reg("fp"), Reg("sp"))
        if len(ir.params) > len(self.isa.arg_registers):
            raise CodegenError("ARM backend supports at most 4 parameters")
        for i, name in enumerate(ir.params):
            home = self._home(name)
            incoming = Reg(self.isa.arg_registers[i])
            if isinstance(home, Reg):
                self.emit("mov", home, incoming)
            else:
                self.emit("str", incoming, home)

    def _epilogue(self) -> None:
        self.emit("pop", Reg("fp"), Reg("lr"))
        self.emit("bx", Reg("lr"))

    def _binop(self, instr: IR.BinOp) -> None:
        dst, slot = self._dest_reg(instr.dst)
        lhs = self._read_reg(instr.lhs, 1)
        mnemonic = self.isa.alu[instr.op]
        imm_ok = instr.op not in (Ops.MUL, Ops.DIV)
        if isinstance(instr.rhs, IR.Imm) and imm_ok:
            self.emit(mnemonic, dst, lhs, AImm(instr.rhs.value))
        else:
            rhs = self._read_reg(instr.rhs, 0)
            self.emit(mnemonic, dst, lhs, rhs)
        self._store_back(dst, slot)

    def _unop(self, instr: IR.UnOp) -> None:
        dst, slot = self._dest_reg(instr.dst)
        src = self._read_reg(instr.src, 1)
        if instr.op == Ops.NEG:
            self.emit("rsb", dst, src, AImm(0))
        else:
            self.emit("mvn", dst, src)
        self._store_back(dst, slot)

    def _compare(self, lhs: IR.Operand, rhs: IR.Operand) -> None:
        lhs_reg = self._read_reg(lhs, 1)
        if isinstance(rhs, IR.Imm):
            self.emit("cmp", lhs_reg, AImm(rhs.value))
        else:
            self.emit("cmp", lhs_reg, self._read_reg(rhs, 0))

    # -- predication ------------------------------------------------------------

    def _body(self, ir: IR.IRFunction) -> None:
        instructions = ir.instructions
        index = 0
        while index < len(instructions):
            consumed = self._try_predicate(instructions, index)
            if consumed:
                for skipped in range(index, index + consumed):
                    self._release(instructions[skipped], skipped)
                index += consumed
                continue
            self._instr(instructions[index], index)
            self._release(instructions[index], index)
            index += 1

    def _try_predicate(self, instructions, index: int) -> int:
        """Recognise a small if/else diamond and emit predicated code.

        Returns the number of IR instructions consumed (0 = no match).
        The lowering emits ``CondJump(N, a, b, L_else)`` where ``N`` is the
        *negated* source condition, so then-arm instructions are predicated
        on ``not N`` and else-arm instructions on ``N``.  The else arm is
        emitted first, matching the MOVLE-before-STRGT layout in the paper's
        Figure 2 -- so a decompiler sees the inverted comparison first.
        """
        match = _match_diamond(instructions, index)
        if match is None:
            return 0
        cond_jump, then_arm, else_arm, consumed = match
        for arm in (then_arm, else_arm):
            for instr in arm:
                if not self._predicable(instr):
                    return 0
        self._compare(cond_jump.lhs, cond_jump.rhs)
        neg_cc = _CC_NAMES[cond_jump.op]
        pos_cc = _CC_NAMES[NEGATED_COMPARISON[cond_jump.op]]
        for instr in else_arm:
            self._emit_predicated(instr, neg_cc)
        for instr in then_arm:
            self._emit_predicated(instr, pos_cc)
        return consumed

    def _predicable(self, instr: IR.IRInstr) -> bool:
        if isinstance(instr, IR.Move):
            return (
                isinstance(instr.dst, IR.Var)
                and isinstance(self._home(instr.dst.name), Reg)
                and self._operand_predicable(instr.src)
            )
        if isinstance(instr, IR.BinOp):
            return (
                instr.op in (Ops.ADD, Ops.SUB, Ops.AND, Ops.OR, Ops.XOR)
                and isinstance(instr.dst, IR.Var)
                and isinstance(self._home(instr.dst.name), Reg)
                and self._operand_predicable(instr.lhs, allow_imm=False)
                and self._operand_predicable(instr.rhs)
            )
        return False

    def _operand_predicable(self, operand: IR.Operand, allow_imm: bool = True) -> bool:
        if isinstance(operand, IR.Imm):
            return allow_imm
        if isinstance(operand, IR.Var):
            return isinstance(self._home(operand.name), Reg)
        return False

    def _emit_predicated(self, instr: IR.IRInstr, cc: str) -> None:
        if isinstance(instr, IR.Move):
            dst = self._home(instr.dst.name)
            if isinstance(instr.src, IR.Imm):
                self.emit("mov", dst, AImm(instr.src.value), cond=cc)
            else:
                self.emit("mov", dst, self._home(instr.src.name), cond=cc)
            return
        assert isinstance(instr, IR.BinOp)
        dst = self._home(instr.dst.name)
        lhs = self._home(instr.lhs.name)
        rhs = (
            AImm(instr.rhs.value)
            if isinstance(instr.rhs, IR.Imm)
            else self._home(instr.rhs.name)
        )
        self.emit(self.isa.alu[instr.op], dst, lhs, rhs, cond=cc)


def _match_diamond(instructions, index: int):
    """Match the IR shape of an if/else (or bare if) with tiny straight arms.

    Returns ``(cond_jump, then_arm, else_arm, consumed)`` or ``None``.
    """
    if index >= len(instructions):
        return None
    cond_jump = instructions[index]
    if not isinstance(cond_jump, IR.CondJump):
        return None

    def collect(start: int, max_len: int = 2):
        arm = []
        position = start
        while position < len(instructions) and len(arm) <= max_len:
            instr = instructions[position]
            if isinstance(instr, (IR.Move, IR.BinOp)):
                arm.append(instr)
                position += 1
                continue
            return arm, position
        return arm, position

    then_arm, position = collect(index + 1)
    if not then_arm or len(then_arm) > 2:
        return None
    instr = instructions[position] if position < len(instructions) else None
    if isinstance(instr, IR.Jump):
        # if/else: Jump(end); Label(else); arm; Label(end)
        end_label = instr.target
        position += 1
        if (
            position >= len(instructions)
            or not isinstance(instructions[position], IR.Label)
            or instructions[position].name != cond_jump.target
        ):
            return None
        position += 1
        else_arm, position = collect(position)
        if not else_arm or len(else_arm) > 2:
            return None
        if (
            position >= len(instructions)
            or not isinstance(instructions[position], IR.Label)
            or instructions[position].name != end_label
        ):
            return None
        return cond_jump, then_arm, else_arm, position + 1 - index
    if isinstance(instr, IR.Label) and instr.name == cond_jump.target:
        # bare if: arm; Label(end)
        return cond_jump, then_arm, [], position + 1 - index
    return None


# -- PPC --------------------------------------------------------------------------


class PPCBackend(_RiscBackend):
    transient = ("r11", "r12")
    temp_pool = ("r5", "r6", "r7", "r8", "r9", "r10")

    def _prologue(self, ir: IR.IRFunction) -> None:
        if len(ir.params) > len(self.isa.arg_registers):
            raise CodegenError("PPC backend supports at most 8 parameters")
        for i, name in enumerate(ir.params):
            home = self._home(name)
            incoming = Reg(self.isa.arg_registers[i])
            if isinstance(home, Reg):
                self.emit("mr", home, incoming)
            else:
                self.emit("stw", incoming, home)

    def _epilogue(self) -> None:
        self.emit("blr")

    def _binop(self, instr: IR.BinOp) -> None:
        dst, slot = self._dest_reg(instr.dst)
        lhs = self._read_reg(instr.lhs, 1)
        if instr.op == Ops.ADD and isinstance(instr.rhs, IR.Imm):
            self.emit("addi", dst, lhs, AImm(instr.rhs.value))
        elif instr.op == Ops.SUB:
            rhs = self._read_reg(instr.rhs, 0)
            # subf rd, ra, rb computes rb - ra
            self.emit("subf", dst, rhs, lhs)
        else:
            rhs = self._read_reg(instr.rhs, 0)
            self.emit(self.isa.alu[instr.op], dst, lhs, rhs)
        self._store_back(dst, slot)

    def _unop(self, instr: IR.UnOp) -> None:
        dst, slot = self._dest_reg(instr.dst)
        src = self._read_reg(instr.src, 1)
        if instr.op == Ops.NEG:
            self.emit("neg", dst, src)
        else:
            self.emit("nor", dst, src, src)
        self._store_back(dst, slot)

    def _compare(self, lhs: IR.Operand, rhs: IR.Operand) -> None:
        lhs_reg = self._read_reg(lhs, 1)
        if isinstance(rhs, IR.Imm):
            self.emit("cmpwi", lhs_reg, AImm(rhs.value))
        else:
            self.emit("cmpw", lhs_reg, self._read_reg(rhs, 0))


_BACKENDS = {
    "x86": X86Backend,
    "x64": X86Backend,
    "arm": ARMBackend,
    "ppc": PPCBackend,
}


def select_instructions(ir: IR.IRFunction, arch: str) -> AsmFunction:
    """Run instruction selection for ``ir`` on the named architecture."""
    isa = get_isa(arch)
    backend_cls = _BACKENDS[isa.name]
    return backend_cls(isa).generate(ir)
