"""Instruction-set architecture definitions.

Four symbolic ISAs model the four architectures the paper's toolchain
(Hex-Rays) supports: x86, x64, ARM and PPC.  Each ISA declares its register
file, calling convention, mnemonic vocabulary (with an opcode table used by
the binary encoder/decoder), and the architectural quirks that make the
emitted assembly *look* different across targets:

* x86 -- two-operand ALU ops, all variables in stack slots, arguments pushed
  on the stack;
* x64 -- two-operand ALU ops, register arguments, 8-byte slots;
* ARM -- three-operand ALU ops, variables homed in ``r4``-``r11``,
  *predicated execution* that collapses small if/else diamonds into one
  basic block (the effect shown in the paper's Figure 2);
* PPC -- three-operand ALU ops, variables homed in ``r14``-``r30``,
  distinct mnemonics (``li``/``mr``/``lwz``/``stw``/``subf``...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.lang.nodes import Ops

SUPPORTED_ARCHES = ("x86", "x64", "arm", "ppc")

# Comparison kind -> per-family conditional branch mnemonic suffix.
_CC_SUFFIX = {
    Ops.EQ: "eq",
    Ops.NE: "ne",
    Ops.GT: "gt",
    Ops.LT: "lt",
    Ops.GE: "ge",
    Ops.LE: "le",
}

# x86-family jcc mnemonics.
_X86_JCC = {
    Ops.EQ: "je",
    Ops.NE: "jne",
    Ops.GT: "jg",
    Ops.LT: "jl",
    Ops.GE: "jge",
    Ops.LE: "jle",
}


@dataclass(frozen=True)
class ISA:
    """Static description of one target architecture."""

    name: str
    word_size: int  # bytes
    frame_pointer: str
    stack_pointer: str
    return_register: str
    link_register: str  # "" when return addresses live on the stack
    arg_registers: Tuple[str, ...]  # empty => stack-passed arguments
    var_registers: Tuple[str, ...]  # variable homes ("" tuple => stack slots)
    scratch_registers: Tuple[str, ...]
    three_operand: bool
    supports_predication: bool
    mnemonics: Tuple[str, ...]
    # ALU op (IR kind) -> mnemonic
    alu: Dict[str, str] = field(default_factory=dict)
    # comparison kind -> conditional-branch mnemonic
    branches: Dict[str, str] = field(default_factory=dict)
    jump: str = "jmp"
    call: str = "call"
    compare: str = "cmp"
    load: str = "mov"
    store: str = "mov"
    move: str = "mov"
    load_imm: str = "mov"
    ret_mnemonic: str = "ret"

    def opcode_table(self) -> Dict[str, int]:
        """Stable mnemonic -> opcode byte mapping for this ISA."""
        return {mnemonic: i + 1 for i, mnemonic in enumerate(self.mnemonics)}

    def mnemonic_table(self) -> Dict[int, str]:
        return {i + 1: mnemonic for i, mnemonic in enumerate(self.mnemonics)}

    def branch_condition(self, mnemonic: str) -> str:
        """Inverse lookup: conditional-branch mnemonic -> comparison kind."""
        for kind, name in self.branches.items():
            if name == mnemonic:
                return kind
        raise KeyError(f"{mnemonic!r} is not a conditional branch on {self.name}")

    def is_conditional_branch(self, mnemonic: str) -> bool:
        return mnemonic in self.branches.values()


def _x86_like(name: str, word_size: int, prefix: str) -> ISA:
    if name == "x86":
        regs = ("eax", "ecx", "edx", "ebx", "esi", "edi")
        fp, sp = "ebp", "esp"
        arg_regs: Tuple[str, ...] = ()
    else:
        regs = ("rax", "rcx", "rdx", "rbx", "rsi", "rdi", "r8", "r9", "r10", "r11")
        fp, sp = "rbp", "rsp"
        arg_regs = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
    mnemonics = (
        "mov", "add", "sub", "imul", "idiv", "and", "or", "xor", "neg", "not",
        "cmp", "test", "push", "pop", "call", "leave", "ret", "jmp",
        "je", "jne", "jg", "jl", "jge", "jle", "nop",
    )
    return ISA(
        name=name,
        word_size=word_size,
        frame_pointer=fp,
        stack_pointer=sp,
        return_register=regs[0],
        link_register="",
        arg_registers=arg_regs,
        var_registers=(),
        scratch_registers=regs,
        three_operand=False,
        supports_predication=False,
        mnemonics=mnemonics,
        alu={
            Ops.ADD: "add",
            Ops.SUB: "sub",
            Ops.MUL: "imul",
            Ops.DIV: "idiv",
            Ops.AND: "and",
            Ops.OR: "or",
            Ops.XOR: "xor",
            Ops.NEG: "neg",
            Ops.NOT: "not",
            Ops.LNOT: "not",
        },
        branches=_X86_JCC,
        jump="jmp",
        call="call",
        compare="cmp",
        ret_mnemonic="ret",
    )


def _arm() -> ISA:
    mnemonics = (
        "mov", "mvn", "ldr", "str", "add", "sub", "rsb", "mul", "sdiv",
        "and", "orr", "eor", "cmp", "b", "bl", "bx",
        "beq", "bne", "bgt", "blt", "bge", "ble", "push", "pop", "nop",
    )
    return ISA(
        name="arm",
        word_size=4,
        frame_pointer="fp",
        stack_pointer="sp",
        return_register="r0",
        link_register="lr",
        arg_registers=("r0", "r1", "r2", "r3"),
        var_registers=("r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11"),
        scratch_registers=("r0", "r1", "r2", "r3", "r12"),
        three_operand=True,
        supports_predication=True,
        mnemonics=mnemonics,
        alu={
            Ops.ADD: "add",
            Ops.SUB: "sub",
            Ops.MUL: "mul",
            Ops.DIV: "sdiv",
            Ops.AND: "and",
            Ops.OR: "orr",
            Ops.XOR: "eor",
            Ops.NEG: "rsb",
            Ops.NOT: "mvn",
            Ops.LNOT: "mvn",
        },
        branches={k: f"b{v}" for k, v in _CC_SUFFIX.items()},
        jump="b",
        call="bl",
        compare="cmp",
        load="ldr",
        store="str",
        move="mov",
        load_imm="mov",
        ret_mnemonic="bx",
    )


def _ppc() -> ISA:
    mnemonics = (
        "li", "mr", "lwz", "stw", "add", "subf", "mullw", "divw",
        "and", "or", "xor", "neg", "nor", "addi", "cmpw", "cmpwi",
        "b", "bl", "blr", "beq", "bne", "bgt", "blt", "bge", "ble", "nop",
    )
    return ISA(
        name="ppc",
        word_size=4,
        frame_pointer="r31",
        stack_pointer="r1",
        return_register="r3",
        link_register="lr",
        arg_registers=("r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10"),
        var_registers=tuple(f"r{i}" for i in range(14, 31)),
        scratch_registers=("r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10",
                           "r11", "r12"),
        three_operand=True,
        supports_predication=False,
        mnemonics=mnemonics,
        alu={
            Ops.ADD: "add",
            Ops.SUB: "subf",
            Ops.MUL: "mullw",
            Ops.DIV: "divw",
            Ops.AND: "and",
            Ops.OR: "or",
            Ops.XOR: "xor",
            Ops.NEG: "neg",
            Ops.NOT: "nor",
            Ops.LNOT: "nor",
        },
        branches={k: f"b{v}" for k, v in _CC_SUFFIX.items()},
        jump="b",
        call="bl",
        compare="cmpw",
        load="lwz",
        store="stw",
        move="mr",
        load_imm="li",
        ret_mnemonic="blr",
    )


_ISAS: Dict[str, ISA] = {
    "x86": _x86_like("x86", 4, "e"),
    "x64": _x86_like("x64", 8, "r"),
    "arm": _arm(),
    "ppc": _ppc(),
}


def get_isa(name: str) -> ISA:
    """Look up an ISA by name (``x86`` / ``x64`` / ``arm`` / ``ppc``)."""
    try:
        return _ISAS[name]
    except KeyError:
        raise ValueError(
            f"unknown architecture {name!r}; supported: {SUPPORTED_ARCHES}"
        ) from None
