"""Three-address intermediate representation and AST lowering.

The IR is a flat instruction list with symbolic labels.  It is deliberately
small: moves, binary/unary ALU ops, compare-and-branch, calls, and returns.
Both the compiler front-end (this module) and the decompiler's lifter
(:mod:`repro.decompiler.lifter`) speak this IR, which mirrors how real
decompilers lift machine code to a machine-independent representation before
AST reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.lang.nodes import (
    FunctionDef,
    NEGATED_COMPARISON,
    Node,
    Ops,
)

# -- operands -----------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A compiler temporary."""

    index: int

    def __str__(self) -> str:
        return f"%t{self.index}"


@dataclass(frozen=True)
class Var:
    """A named source-level variable (parameter or local)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An integer immediate."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class StrLit:
    """A string literal (pooled into the binary's string section)."""

    text: str

    def __str__(self) -> str:
        return f'"{self.text}"'


Operand = Union[Temp, Var, Imm, StrLit]
Dest = Union[Temp, Var]

BINARY_IR_OPS = (
    Ops.ADD,
    Ops.SUB,
    Ops.MUL,
    Ops.DIV,
    Ops.AND,
    Ops.OR,
    Ops.XOR,
)
UNARY_IR_OPS = (Ops.NEG, Ops.NOT, Ops.LNOT)
COMPARE_IR_OPS = (Ops.EQ, Ops.NE, Ops.GT, Ops.LT, Ops.GE, Ops.LE)


# -- instructions --------------------------------------------------------------


@dataclass(frozen=True)
class Label:
    name: str

    def __str__(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Move:
    dst: Dest
    src: Operand

    def __str__(self) -> str:
        return f"  {self.dst} = {self.src}"


@dataclass(frozen=True)
class BinOp:
    dst: Dest
    op: str
    lhs: Operand
    rhs: Operand

    def __str__(self) -> str:
        return f"  {self.dst} = {self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class UnOp:
    dst: Dest
    op: str
    src: Operand

    def __str__(self) -> str:
        return f"  {self.dst} = {self.op} {self.src}"


@dataclass(frozen=True)
class CondJump:
    """Jump to ``target`` when ``lhs <op> rhs`` holds; else fall through."""

    op: str
    lhs: Operand
    rhs: Operand
    target: str

    def __str__(self) -> str:
        return f"  if {self.lhs} {self.op} {self.rhs} goto {self.target}"


@dataclass(frozen=True)
class Jump:
    target: str

    def __str__(self) -> str:
        return f"  goto {self.target}"


@dataclass(frozen=True)
class Call:
    dst: Optional[Dest]
    func: str
    args: Tuple[Operand, ...]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"  {self.dst} = " if self.dst is not None else "  "
        return f"{prefix}call {self.func}({args})"


@dataclass(frozen=True)
class Ret:
    value: Optional[Operand] = None

    def __str__(self) -> str:
        return f"  ret {self.value}" if self.value is not None else "  ret"


IRInstr = Union[Label, Move, BinOp, UnOp, CondJump, Jump, Call, Ret]


@dataclass
class IRFunction:
    """A lowered function: flat instruction list plus metadata."""

    name: str
    params: Tuple[str, ...]
    local_vars: Tuple[str, ...]
    instructions: List[IRInstr] = field(default_factory=list)

    def variables(self) -> Tuple[str, ...]:
        return tuple(self.params) + tuple(self.local_vars)

    def labels(self) -> Dict[str, int]:
        """Map label name -> index in the instruction list."""
        return {
            instr.name: i
            for i, instr in enumerate(self.instructions)
            if isinstance(instr, Label)
        }

    def callee_names(self) -> Tuple[str, ...]:
        return tuple(
            instr.func for instr in self.instructions if isinstance(instr, Call)
        )

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.params)})"
        return "\n".join([header] + [str(i) for i in self.instructions])


class LoweringError(Exception):
    """Raised when an AST uses constructs the lowering does not support."""


@dataclass
class _LoopContext:
    break_label: str
    continue_label: str


class Lowerer:
    """Lower a :class:`~repro.lang.nodes.FunctionDef` to :class:`IRFunction`."""

    def __init__(self):
        self._temp_counter = 0
        self._label_counter = 0
        self._code: List[IRInstr] = []
        self._loops: List[_LoopContext] = []

    # -- public ------------------------------------------------------------

    def lower(self, fn: FunctionDef) -> IRFunction:
        self._temp_counter = 0
        self._label_counter = 0
        self._code = []
        self._loops = []
        self._stmt(fn.body)
        if not self._code or not isinstance(self._code[-1], Ret):
            self._code.append(Ret(Imm(0)))
        return IRFunction(
            name=fn.name,
            params=fn.params,
            local_vars=fn.local_vars,
            instructions=self._code,
        )

    # -- helpers -------------------------------------------------------------

    def _fresh_temp(self) -> Temp:
        temp = Temp(self._temp_counter)
        self._temp_counter += 1
        return temp

    def _fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{hint}{self._label_counter}"

    def _emit(self, instr: IRInstr) -> None:
        self._code.append(instr)

    # -- statements ------------------------------------------------------------

    def _stmt(self, node: Node) -> None:
        handler = {
            Ops.BLOCK: self._stmt_block,
            Ops.IF: self._stmt_if,
            Ops.WHILE: self._stmt_while,
            Ops.FOR: self._stmt_for,
            Ops.RETURN: self._stmt_return,
            Ops.BREAK: self._stmt_break,
            Ops.CONTINUE: self._stmt_continue,
            Ops.SWITCH: self._stmt_switch,
        }.get(node.op)
        if handler is not None:
            handler(node)
            return
        if node.op == Ops.ASG or node.op in _COMPOUND_ASG:
            self._stmt_assign(node)
            return
        if node.op == Ops.CALL:
            args = tuple(self._expr(a) for a in node.children)
            self._emit(Call(None, node.value, args))
            return
        raise LoweringError(f"unsupported statement op: {node.op!r}")

    def _stmt_block(self, node: Node) -> None:
        for child in node.children:
            self._stmt(child)

    def _stmt_assign(self, node: Node) -> None:
        lhs, rhs = node.children
        if lhs.op != Ops.VAR:
            raise LoweringError("only variable assignment targets are supported")
        dest = Var(lhs.value)
        if node.op == Ops.ASG:
            if rhs.op == Ops.CALL:
                args = tuple(self._expr(a) for a in rhs.children)
                self._emit(Call(dest, rhs.value, args))
                return
            if rhs.op in BINARY_IR_OPS and len(rhs.children) == 2:
                left = self._expr(rhs.children[0])
                right = self._expr(rhs.children[1])
                self._emit(BinOp(dest, rhs.op, left, right))
                return
            if rhs.op in UNARY_IR_OPS:
                src = self._expr(rhs.children[0])
                self._emit(UnOp(dest, rhs.op, src))
                return
            self._emit(Move(dest, self._expr(rhs)))
            return
        # compound assignment: x op= e  =>  x = x op e
        op = _COMPOUND_ASG[node.op]
        value = self._expr(rhs)
        self._emit(BinOp(dest, op, Var(lhs.value), value))

    def _stmt_if(self, node: Node) -> None:
        cond = node.children[0]
        has_else = len(node.children) == 3
        false_label = self._fresh_label("else" if has_else else "endif")
        self._branch_if_false(cond, false_label)
        self._stmt(node.children[1])
        if has_else:
            end_label = self._fresh_label("endif")
            self._emit(Jump(end_label))
            self._emit(Label(false_label))
            self._stmt(node.children[2])
            self._emit(Label(end_label))
        else:
            self._emit(Label(false_label))

    def _stmt_while(self, node: Node) -> None:
        cond, body = node.children
        head = self._fresh_label("while")
        end = self._fresh_label("endwhile")
        self._emit(Label(head))
        self._branch_if_false(cond, end)
        self._loops.append(_LoopContext(break_label=end, continue_label=head))
        self._stmt(body)
        self._loops.pop()
        self._emit(Jump(head))
        self._emit(Label(end))

    def _stmt_for(self, node: Node) -> None:
        init, cond, step, body = node.children
        self._stmt(init)
        head = self._fresh_label("for")
        step_label = self._fresh_label("forstep")
        end = self._fresh_label("endfor")
        self._emit(Label(head))
        self._branch_if_false(cond, end)
        self._loops.append(_LoopContext(break_label=end, continue_label=step_label))
        self._stmt(body)
        self._loops.pop()
        self._emit(Label(step_label))
        self._stmt(step)
        self._emit(Jump(head))
        self._emit(Label(end))

    def _stmt_switch(self, node: Node) -> None:
        # switch(value) { case k: block; ... }  -- children: value, then
        # alternating (num, block) pairs.  Lowered to a compare chain.
        value = self._expr(node.children[0])
        end = self._fresh_label("endswitch")
        cases = node.children[1:]
        if len(cases) % 2 != 0:
            raise LoweringError("switch requires (num, block) child pairs")
        for i in range(0, len(cases), 2):
            case_value, case_body = cases[i], cases[i + 1]
            skip = self._fresh_label("case")
            self._emit(
                CondJump(Ops.NE, value, self._expr(case_value), skip)
            )
            self._loops.append(_LoopContext(break_label=end, continue_label=end))
            self._stmt(case_body)
            self._loops.pop()
            self._emit(Jump(end))
            self._emit(Label(skip))
        self._emit(Label(end))

    def _stmt_return(self, node: Node) -> None:
        if node.children:
            self._emit(Ret(self._expr(node.children[0])))
        else:
            self._emit(Ret(None))

    def _stmt_break(self, node: Node) -> None:
        if not self._loops:
            raise LoweringError("break outside loop")
        self._emit(Jump(self._loops[-1].break_label))

    def _stmt_continue(self, node: Node) -> None:
        if not self._loops:
            raise LoweringError("continue outside loop")
        self._emit(Jump(self._loops[-1].continue_label))

    # -- conditions --------------------------------------------------------------

    def _branch_if_false(self, cond: Node, target: str) -> None:
        """Emit a branch to ``target`` taken when ``cond`` is false."""
        if cond.op in COMPARE_IR_OPS:
            lhs = self._expr(cond.children[0])
            rhs = self._expr(cond.children[1])
            self._emit(CondJump(NEGATED_COMPARISON[cond.op], lhs, rhs, target))
            return
        if cond.op == Ops.LNOT:
            self._branch_if_true(cond.children[0], target)
            return
        value = self._expr(cond)
        self._emit(CondJump(Ops.EQ, value, Imm(0), target))

    def _branch_if_true(self, cond: Node, target: str) -> None:
        if cond.op in COMPARE_IR_OPS:
            lhs = self._expr(cond.children[0])
            rhs = self._expr(cond.children[1])
            self._emit(CondJump(cond.op, lhs, rhs, target))
            return
        value = self._expr(cond)
        self._emit(CondJump(Ops.NE, value, Imm(0), target))

    # -- expressions ---------------------------------------------------------------

    def _expr(self, node: Node) -> Operand:
        if node.op == Ops.VAR:
            return Var(node.value)
        if node.op == Ops.NUM:
            return Imm(int(node.value))
        if node.op == Ops.STR:
            return StrLit(node.value)
        if node.op == Ops.CALL:
            args = tuple(self._expr(a) for a in node.children)
            temp = self._fresh_temp()
            self._emit(Call(temp, node.value, args))
            return temp
        if node.op in BINARY_IR_OPS and len(node.children) == 2:
            lhs = self._expr(node.children[0])
            rhs = self._expr(node.children[1])
            temp = self._fresh_temp()
            self._emit(BinOp(temp, node.op, lhs, rhs))
            return temp
        if node.op in UNARY_IR_OPS:
            src = self._expr(node.children[0])
            temp = self._fresh_temp()
            self._emit(UnOp(temp, node.op, src))
            return temp
        if node.op in COMPARE_IR_OPS:
            # Materialise a boolean: t = (a op b) ? 1 : 0
            lhs = self._expr(node.children[0])
            rhs = self._expr(node.children[1])
            temp = self._fresh_temp()
            true_label = self._fresh_label("cmpt")
            end_label = self._fresh_label("cmpe")
            self._emit(CondJump(node.op, lhs, rhs, true_label))
            self._emit(Move(temp, Imm(0)))
            self._emit(Jump(end_label))
            self._emit(Label(true_label))
            self._emit(Move(temp, Imm(1)))
            self._emit(Label(end_label))
            return temp
        raise LoweringError(f"unsupported expression op: {node.op!r}")


_COMPOUND_ASG = {
    Ops.ASG_OR: Ops.OR,
    Ops.ASG_XOR: Ops.XOR,
    Ops.ASG_AND: Ops.AND,
    Ops.ASG_ADD: Ops.ADD,
    Ops.ASG_SUB: Ops.SUB,
    Ops.ASG_MUL: Ops.MUL,
    Ops.ASG_DIV: Ops.DIV,
}


def lower_function(fn: FunctionDef) -> IRFunction:
    """Convenience wrapper: lower one function definition."""
    return Lowerer().lower(fn)
