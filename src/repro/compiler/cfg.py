"""Control-flow graph construction over assembly functions.

Used by the decompiler's structurer and by the Gemini baseline's ACFG
extractor.  Blocks are maximal straight-line instruction runs; edges follow
branches and fall-through.  The graph is a :class:`networkx.DiGraph` whose
nodes are block ids, so dominator/post-dominator machinery from networkx is
available downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.compiler.codegen import AsmFunction, Instruction, Lab
from repro.compiler.isa import get_isa


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    block_id: int
    start: int  # index of first instruction
    end: int  # index one past the last instruction
    instructions: List[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1] if self.instructions else None


@dataclass
class ControlFlowGraph:
    """Basic blocks plus a networkx DiGraph of edges.

    Edge attribute ``kind`` is one of ``"taken"`` (branch target),
    ``"fallthrough"``, or ``"jump"`` (unconditional).
    """

    function: AsmFunction
    blocks: Dict[int, BasicBlock]
    graph: nx.DiGraph
    entry: int

    def successors(self, block_id: int) -> List[int]:
        return sorted(self.graph.successors(block_id))

    def predecessors(self, block_id: int) -> List[int]:
        return sorted(self.graph.predecessors(block_id))

    def block_at(self, instr_index: int) -> BasicBlock:
        for block in self.blocks.values():
            if block.start <= instr_index < block.end:
                return block
        raise KeyError(f"no block contains instruction {instr_index}")

    def edge_kind(self, src: int, dst: int) -> str:
        return self.graph.edges[src, dst]["kind"]

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def exit_blocks(self) -> List[int]:
        return [b for b in self.blocks if self.graph.out_degree(b) == 0]


def _is_return(instr: Instruction, arch: str) -> bool:
    if arch in ("x86", "x64"):
        return instr.mnemonic == "ret"
    if arch == "arm":
        return instr.mnemonic == "bx"
    return instr.mnemonic == "blr"


def build_cfg(fn: AsmFunction) -> ControlFlowGraph:
    """Construct the CFG of an assembly function."""
    isa = get_isa(fn.arch)
    n = len(fn.instructions)
    label_targets = {index for index in fn.labels.values() if index < n}

    # -- leaders -------------------------------------------------------------
    leaders = {0} | label_targets
    for i, instr in enumerate(fn.instructions):
        if (
            instr.mnemonic == isa.jump
            or isa.is_conditional_branch(instr.mnemonic)
            or _is_return(instr, fn.arch)
        ):
            if i + 1 < n:
                leaders.add(i + 1)
    ordered = sorted(leaders)

    # -- blocks ---------------------------------------------------------------
    blocks: Dict[int, BasicBlock] = {}
    start_to_id: Dict[int, int] = {}
    for block_id, start in enumerate(ordered):
        end = ordered[block_id + 1] if block_id + 1 < len(ordered) else n
        blocks[block_id] = BasicBlock(
            block_id=block_id,
            start=start,
            end=end,
            instructions=list(fn.instructions[start:end]),
        )
        start_to_id[start] = block_id

    def target_block(label: str) -> int:
        index = fn.labels[label]
        if index >= n:
            # Label at function end: synthesise an empty exit block.
            return _ensure_exit_block()
        return start_to_id[index]

    exit_block_id: List[Optional[int]] = [None]

    def _ensure_exit_block() -> int:
        if exit_block_id[0] is None:
            block_id = len(blocks)
            blocks[block_id] = BasicBlock(block_id=block_id, start=n, end=n)
            exit_block_id[0] = block_id
        return exit_block_id[0]

    graph = nx.DiGraph()
    graph.add_nodes_from(blocks)
    for block in list(blocks.values()):
        if not block.instructions:
            continue
        last = block.instructions[-1]
        last_index = block.end - 1
        if _is_return(last, fn.arch):
            continue
        if last.mnemonic == isa.jump and isinstance(last.operands[0], Lab):
            graph.add_edge(block.block_id, target_block(last.operands[0].name),
                           kind="jump")
            continue
        if isa.is_conditional_branch(last.mnemonic):
            graph.add_edge(block.block_id, target_block(last.operands[0].name),
                           kind="taken")
            if last_index + 1 < n:
                graph.add_edge(block.block_id, start_to_id[last_index + 1],
                               kind="fallthrough")
            continue
        # straight-line fallthrough
        if block.end < n:
            graph.add_edge(block.block_id, start_to_id[block.end],
                           kind="fallthrough")
    if exit_block_id[0] is not None:
        graph.add_node(exit_block_id[0])
    return ControlFlowGraph(function=fn, blocks=blocks, graph=graph, entry=0)
