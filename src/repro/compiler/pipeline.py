"""End-to-end compilation: packages -> binaries.

``compile_package`` is the analogue of the paper's buildroot cross-compile
step: one source package in, one RBIN binary per architecture out.  Library
leaf functions (the mini libc) are appended to every binary so all call
targets resolve at link time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.binformat.binary import BinaryFile, assemble_binary
from repro.compiler.codegen import AsmFunction, select_instructions
from repro.compiler.ir import Lowerer
from repro.compiler.isa import SUPPORTED_ARCHES
from repro.compiler.optimizer import (
    DEFAULT_INLINE_THRESHOLDS,
    fold_constants,
    inline_small_functions,
)
from repro.lang import nodes as N
from repro.lang.nodes import FunctionDef, Ops, Package


@dataclass
class CompilationOptions:
    """Per-compile knobs.

    ``inline_threshold`` of None picks the per-architecture default from
    :data:`~repro.compiler.optimizer.DEFAULT_INLINE_THRESHOLDS`, which is how
    cross-architecture callee-count divergence arises (see DESIGN.md).
    """

    inline_threshold: Optional[int] = None
    fold_constants: bool = True
    include_library: bool = True

    def effective_inline_threshold(self, arch: str) -> int:
        if self.inline_threshold is not None:
            return self.inline_threshold
        return DEFAULT_INLINE_THRESHOLDS[arch]


def library_function_defs() -> List[FunctionDef]:
    """Deterministic bodies for the mini-libc leaf functions.

    Statement counts straddle the per-arch inline thresholds on purpose:
    ``lib_read``/``lib_alloc`` (2 statements) inline on x64/ARM (threshold 3)
    but stay calls on x86/PPC (threshold 2); ``lib_free`` (3 statements)
    inlines nowhere by default; the 0/1-statement leaves inline everywhere.
    """
    defs = []
    # return a0
    defs.append(FunctionDef("lib_log", ("a0",), (), N.block(N.ret(N.var("a0")))))
    # v0 = a0 ^ a1; return v0
    defs.append(
        FunctionDef(
            "lib_checksum",
            ("a0", "a1"),
            ("v0",),
            N.block(
                N.asg(N.var("v0"), N.binop(Ops.XOR, N.var("a0"), N.var("a1"))),
                N.ret(N.var("v0")),
            ),
        )
    )
    # v0 = a0 + 1; v0 = v0 & 4095; return v0
    defs.append(
        FunctionDef(
            "lib_read",
            ("a0",),
            ("v0",),
            N.block(
                N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(1))),
                N.asg(N.var("v0"), N.binop(Ops.AND, N.var("v0"), N.num(4095))),
                N.ret(N.var("v0")),
            ),
        )
    )
    # v0 = a0 - a1; return v0
    defs.append(
        FunctionDef(
            "lib_write",
            ("a0", "a1"),
            ("v0",),
            N.block(
                N.asg(N.var("v0"), N.binop(Ops.SUB, N.var("a0"), N.var("a1"))),
                N.ret(N.var("v0")),
            ),
        )
    )
    # v0 = a0 * 2; v0 = v0 + 16; return v0
    defs.append(
        FunctionDef(
            "lib_alloc",
            ("a0",),
            ("v0",),
            N.block(
                N.asg(N.var("v0"), N.binop(Ops.MUL, N.var("a0"), N.num(2))),
                N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("v0"), N.num(16))),
                N.ret(N.var("v0")),
            ),
        )
    )
    # v0 = a0 & 255; v1 = v0 + 3; v0 = v1 ^ 21; return v0
    defs.append(
        FunctionDef(
            "lib_free",
            ("a0",),
            ("v0", "v1"),
            N.block(
                N.asg(N.var("v0"), N.binop(Ops.AND, N.var("a0"), N.num(255))),
                N.asg(N.var("v1"), N.binop(Ops.ADD, N.var("v0"), N.num(3))),
                N.asg(N.var("v0"), N.binop(Ops.XOR, N.var("v1"), N.num(21))),
                N.ret(N.var("v0")),
            ),
        )
    )
    return defs


def compile_function_to_asm(
    fn: FunctionDef, arch: str, options: Optional[CompilationOptions] = None
) -> AsmFunction:
    """Lower, optimise and select instructions for one function."""
    options = options or CompilationOptions()
    ir = Lowerer().lower(fn)
    if options.fold_constants:
        ir = fold_constants(ir)
    return select_instructions(ir, arch)


def compile_package(
    package: Package, arch: str, options: Optional[CompilationOptions] = None
) -> BinaryFile:
    """Compile a package for one architecture into a binary.

    Pipeline: inline small callees (per-arch threshold) -> lower each
    function to IR -> fold constants -> select instructions -> assemble,
    with the library leaf bodies appended.
    """
    if arch not in SUPPORTED_ARCHES:
        raise ValueError(f"unknown architecture {arch!r}")
    options = options or CompilationOptions()
    library = library_function_defs() if options.include_library else []
    augmented = Package(name=package.name, functions=list(package.functions) + library)
    inlined = inline_small_functions(
        augmented, options.effective_inline_threshold(arch)
    )
    asm_functions = [
        compile_function_to_asm(fn, arch, options) for fn in inlined.functions
    ]
    return assemble_binary(package.name, arch, asm_functions)


def compile_function(
    fn: FunctionDef, arch: str, options: Optional[CompilationOptions] = None
) -> BinaryFile:
    """Compile a standalone function (plus the library) into a binary."""
    package = Package(name=fn.name, functions=[fn])
    return compile_package(package, arch, options)


def cross_compile(
    package: Package,
    arches: Sequence[str] = SUPPORTED_ARCHES,
    options: Optional[CompilationOptions] = None,
) -> Dict[str, BinaryFile]:
    """Compile one package for several architectures."""
    return {arch: compile_package(package, arch, options) for arch in arches}
