"""Scratch-register allocation for instruction selection.

IR temporaries produced by :mod:`repro.compiler.ir` are expression-local and
short-lived (the language generator never materialises comparisons or nests
calls), so a simple allocate/free pool suffices: a temp's register is freed
at its last use, and the pool is sized so that well-formed inputs never
exhaust it.  Exhaustion raises :class:`AllocationError` with a clear message
rather than silently mis-compiling.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.ir import (
    BinOp,
    Call,
    CondJump,
    IRFunction,
    Move,
    Ret,
    Temp,
    UnOp,
)


class AllocationError(Exception):
    """Raised when the scratch pool is exhausted or a temp is misused."""


def temp_last_uses(ir: IRFunction) -> Dict[int, int]:
    """Index of the final instruction that *reads* each temp."""
    last: Dict[int, int] = {}
    for i, instr in enumerate(ir.instructions):
        for operand in instruction_reads(instr):
            if isinstance(operand, Temp):
                last[operand.index] = i
    return last


def instruction_reads(instr) -> Tuple:
    """Operands read by an IR instruction."""
    if isinstance(instr, Move):
        return (instr.src,)
    if isinstance(instr, BinOp):
        return (instr.lhs, instr.rhs)
    if isinstance(instr, UnOp):
        return (instr.src,)
    if isinstance(instr, CondJump):
        return (instr.lhs, instr.rhs)
    if isinstance(instr, Call):
        return tuple(instr.args)
    if isinstance(instr, Ret):
        return (instr.value,) if instr.value is not None else ()
    return ()


class ScratchAllocator:
    """Map live IR temps to scratch registers within one function."""

    def __init__(self, registers: Tuple[str, ...], ir: IRFunction):
        if not registers:
            raise AllocationError("scratch register pool is empty")
        self._free: List[str] = list(registers)
        self._assigned: Dict[int, str] = {}
        self._last_uses = temp_last_uses(ir)

    @property
    def live_count(self) -> int:
        return len(self._assigned)

    def define(self, temp: Temp) -> str:
        """Allocate a register for a newly defined temp."""
        if temp.index in self._assigned:
            raise AllocationError(f"temp {temp} defined twice")
        if not self._free:
            raise AllocationError(
                "scratch register pool exhausted; expression too deep for "
                "this backend"
            )
        register = self._free.pop(0)
        self._assigned[temp.index] = register
        return register

    def location(self, temp: Temp) -> str:
        """Register currently holding a live temp."""
        try:
            return self._assigned[temp.index]
        except KeyError:
            raise AllocationError(f"temp {temp} used before definition") from None

    def release_after_use(self, temp: Temp, instr_index: int) -> None:
        """Free the temp's register if ``instr_index`` was its final use."""
        if self._last_uses.get(temp.index, -1) <= instr_index:
            register = self._assigned.pop(temp.index, None)
            if register is not None:
                self._free.append(register)

    def assert_no_live_temps(self, context: str) -> None:
        """Invariant check used around call sites."""
        if self._assigned:
            live = ", ".join(f"%t{i}" for i in sorted(self._assigned))
            raise AllocationError(
                f"temps live across {context}: {live}; the lowering should "
                "not produce values that survive a call"
            )
