"""Compiler optimisations.

Two passes matter for the reproduction:

* **Function inlining** (AST level).  The paper's calibration scheme exists
  because real compilers inline small callees, perturbing callee counts
  across architectures.  We reproduce that: each backend has a default
  inline threshold (cost models differ per target), so a callee near the
  threshold is inlined on some architectures and not others -- which the
  β instruction-count filter in :mod:`repro.core.calibration` then smooths.
* **Constant folding** (IR level).  A classic clean-up pass; it also makes
  the emitted assembly less trivially identical across targets.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.compiler import ir as IR
from repro.lang.nodes import FunctionDef, Node, Ops, Package

# Default inline thresholds (max callee statement count), per architecture.
# Same source + different targets => occasionally different inline decisions,
# as with real compiler cost models.
DEFAULT_INLINE_THRESHOLDS = {"x86": 2, "x64": 3, "arm": 3, "ppc": 2}


# -- inlining --------------------------------------------------------------------


def _inlinable_body(fn: FunctionDef) -> Optional[Tuple[List[Node], Node]]:
    """If ``fn`` is a straight-line leaf function, return (stmts, return expr).

    Only functions whose body is a block of plain/compound assignments
    followed by a single ``return <expr>`` are inlined; anything with control
    flow or calls stays a real call.
    """
    body = fn.body
    if body.op != Ops.BLOCK or not body.children:
        return None
    *stmts, last = body.children
    if last.op != Ops.RETURN or len(last.children) != 1:
        return None
    for stmt in stmts:
        if stmt.op != Ops.ASG and stmt.op not in _COMPOUND:
            return None
        if any(n.op == Ops.CALL for n in stmt.walk()):
            return None
    if any(n.op == Ops.CALL for n in last.walk()):
        return None
    return list(stmts), last.children[0]


_COMPOUND = {
    Ops.ASG_OR, Ops.ASG_XOR, Ops.ASG_AND, Ops.ASG_ADD,
    Ops.ASG_SUB, Ops.ASG_MUL, Ops.ASG_DIV,
}


def _substitute(node: Node, mapping: Dict[str, Node]) -> Node:
    """Replace ``var`` leaves by mapped expressions (used for parameters)."""
    if node.op == Ops.VAR and node.value in mapping:
        return mapping[node.value]
    if not node.children:
        return node
    return Node(
        node.op,
        tuple(_substitute(c, mapping) for c in node.children),
        node.value,
    )


class _Inliner:
    def __init__(self, package: Package, threshold: int):
        self.threshold = threshold
        self.candidates: Dict[str, Tuple[List[Node], Node, FunctionDef]] = {}
        for fn in package.functions:
            body = _inlinable_body(fn)
            if body is not None and len(body[0]) <= threshold:
                self.candidates[fn.name] = (body[0], body[1], fn)
        self._rename_counter = 0

    def inline_function(self, fn: FunctionDef) -> FunctionDef:
        new_locals: List[str] = list(fn.local_vars)
        body = self._rewrite(fn.body, new_locals)
        return FunctionDef(
            name=fn.name,
            params=fn.params,
            local_vars=tuple(new_locals),
            body=body,
            return_type=fn.return_type,
        )

    def _rewrite(self, node: Node, new_locals: List[str]) -> Node:
        if node.op == Ops.BLOCK:
            out: List[Node] = []
            for child in node.children:
                out.extend(self._rewrite_stmt(child, new_locals))
            return Node(Ops.BLOCK, tuple(out))
        if node.op in (Ops.IF, Ops.WHILE, Ops.FOR, Ops.SWITCH):
            children = list(node.children)
            for i, child in enumerate(children):
                if child.op == Ops.BLOCK:
                    children[i] = self._rewrite(child, new_locals)
            return Node(node.op, tuple(children), node.value)
        return node

    def _rewrite_stmt(self, stmt: Node, new_locals: List[str]) -> List[Node]:
        if stmt.op in (Ops.IF, Ops.WHILE, Ops.FOR, Ops.BLOCK, Ops.SWITCH):
            return [self._rewrite(stmt, new_locals)]
        if stmt.op == Ops.ASG and stmt.children[1].op == Ops.CALL:
            call = stmt.children[1]
            expansion = self._expand(call, new_locals)
            if expansion is not None:
                stmts, value = expansion
                return stmts + [Node(Ops.ASG, (stmt.children[0], value))]
        if stmt.op == Ops.CALL:
            expansion = self._expand(stmt, new_locals)
            if expansion is not None:
                stmts, _value = expansion
                return stmts
        return [stmt]

    def _expand(self, call: Node, new_locals: List[str]):
        target = self.candidates.get(call.value)
        if target is None:
            return None
        stmts, ret_expr, fn = target
        if len(call.children) != len(fn.params):
            return None
        if any(arg.op not in (Ops.VAR, Ops.NUM, Ops.STR) for arg in call.children):
            return None
        mapping: Dict[str, Node] = dict(zip(fn.params, call.children))
        for local in fn.local_vars:
            self._rename_counter += 1
            fresh = f"inl{self._rename_counter}"
            new_locals.append(fresh)
            mapping[local] = Node(Ops.VAR, value=fresh)
        inlined = [_substitute(s, mapping) for s in stmts]
        return inlined, _substitute(ret_expr, mapping)


def inline_small_functions(package: Package, threshold: int) -> Package:
    """Return a copy of ``package`` with small leaf callees inlined.

    One level of inlining is applied (callees are expanded into callers; the
    expansion is not re-scanned), which matches the conservative behaviour of
    ``-O1``-style inliners on call-graph DAGs.
    """
    inliner = _Inliner(package, threshold)
    out = Package(name=package.name)
    for fn in package.functions:
        out.functions.append(inliner.inline_function(fn))
    return out


# -- constant folding ---------------------------------------------------------------


_FOLDABLE = {
    Ops.ADD: lambda a, b: a + b,
    Ops.SUB: lambda a, b: a - b,
    Ops.MUL: lambda a, b: a * b,
    Ops.DIV: lambda a, b: _c_div(a, b),
    Ops.AND: lambda a, b: a & b,
    Ops.OR: lambda a, b: a | b,
    Ops.XOR: lambda a, b: a ^ b,
}


def _c_div(a: int, b: int) -> int:
    """C-style truncating division (toward zero)."""
    if b == 0:
        raise ZeroDivisionError("constant division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def fold_constants(ir: IR.IRFunction) -> IR.IRFunction:
    """Fold binary ops whose operands are both immediates into moves."""
    folded: List[IR.IRInstr] = []
    for instr in ir.instructions:
        if (
            isinstance(instr, IR.BinOp)
            and isinstance(instr.lhs, IR.Imm)
            and isinstance(instr.rhs, IR.Imm)
            and instr.op in _FOLDABLE
            and not (instr.op == Ops.DIV and instr.rhs.value == 0)
        ):
            value = _FOLDABLE[instr.op](instr.lhs.value, instr.rhs.value)
            folded.append(IR.Move(instr.dst, IR.Imm(value)))
            continue
        if (
            isinstance(instr, IR.UnOp)
            and isinstance(instr.src, IR.Imm)
            and instr.op == Ops.NEG
        ):
            folded.append(IR.Move(instr.dst, IR.Imm(-instr.src.value)))
            continue
        folded.append(instr)
    return replace(ir, instructions=folded)
