"""IoT firmware vulnerability search (paper §V, Table IV).

Builds a firmware corpus with *implanted* vulnerable functions -- the
substitute for the paper's 5,979 downloaded vendor images -- and runs the
paper's search protocol:

1. run the corpus through the staged offline pipeline
   (:class:`~repro.pipeline.corpus.CorpusPipeline`): unpack every image
   with binwalk (unknown formats are skipped), decompile, preprocess and
   encode every function of every (stripped) binary, reusing cached
   artifacts on warm runs;
2. encode the CVE library's 7 vulnerable functions (query-side encodings
   go through the same artifact cache);
3. flag candidates whose similarity clears the Youden-derived threshold;
4. confirm candidates via criterion A (same software and vulnerable
   version) and criterion B (similarity ≈ 1), escalating the rest to
   "manual analysis" (simulated with generation-time ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.config import EngineConfig
from repro.api.engine import AsteriaEngine
from repro.binformat.firmware import FirmwareImage, pack_firmware
from repro.compiler.pipeline import compile_package
from repro.core.model import Asteria, FunctionEncoding
from repro.lang import nodes as N
from repro.lang.generator import GeneratorConfig, ProgramGenerator
from repro.lang.nodes import FunctionDef, Ops, Package
from repro.pipeline import ArtifactCache
from repro.utils.logging import get_logger
from repro.utils.rng import RNG, derive_seed

_LOG = get_logger("evalsuite.vulnsearch")


@dataclass(frozen=True)
class CVEEntry:
    """One vulnerability in the search library (a Table IV row)."""

    cve_id: str
    software: str
    function_name: str
    vulnerable_version: str
    fixed_version: str


CVE_LIBRARY: Tuple[CVEEntry, ...] = (
    CVEEntry("CVE-2016-2105", "openssl", "EVP_EncodeUpdate", "1.0.1", "1.0.2t"),
    CVEEntry("CVE-2014-4877", "wget", "ftp_retrieve_glob", "1.15", "1.16"),
    CVEEntry("CVE-2014-0195", "openssl", "dtls1_reassemble_fragment", "1.0.1", "1.0.2t"),
    CVEEntry("CVE-2016-6303", "openssl", "MDC2_Update", "1.0.1", "1.0.2t"),
    CVEEntry("CVE-2016-8618", "libcurl", "curl_maprintf", "7.50.0", "7.51.0"),
    CVEEntry("CVE-2013-1944", "libcurl", "tailmatch", "7.50.0", "7.51.0"),
    CVEEntry("CVE-2011-0762", "vsftpd", "vsf_filename_passes_filter", "2.3.2", "2.3.3"),
)

_VENDOR_MODELS = {
    "NetGear": ("R7000", "D7000", "R8000", "R7500", "R7800", "R6250",
                "R7900", "FVS318Gv2", "D7800", "R6700"),
    "Dlink": ("DSN-6200", "DIR-850", "DIR-868"),
    "Schneider": ("BMX-NOE", "TSXETY", "SCADAPack"),
}

# Firmware architecture mix: mostly ARM, then PPC (paper Table II).
_ARCH_WEIGHTS = (("arm", 0.65), ("ppc", 0.20), ("x86", 0.07), ("x64", 0.08))

_VULN_GEN_CONFIG = GeneratorConfig(
    functions_per_package=1,
    min_statements=6,
    max_statements=10,
    max_depth=3,
)


def vulnerable_function(entry: CVEEntry) -> FunctionDef:
    """The (deterministic) body of one CVE's vulnerable function."""
    seed = derive_seed(0xCE, entry.cve_id)
    generator = ProgramGenerator(seed=seed, config=_VULN_GEN_CONFIG)
    fn = generator.generate_function(entry.function_name)
    return fn


def patched_function(entry: CVEEntry) -> FunctionDef:
    """The fixed variant: the vulnerable body behind a new bounds check."""
    fn = vulnerable_function(entry)
    guard = N.if_(
        N.binop(Ops.GT, N.var(fn.params[0]), N.num(4096)),
        N.block(N.ret(N.num(0))),
    )
    body = N.block(guard, *fn.body.children)
    return FunctionDef(
        name=fn.name,
        params=fn.params,
        local_vars=fn.local_vars,
        body=body,
        return_type=fn.return_type,
    )


def software_package(software: str, version: str, vulnerable: bool) -> Package:
    """A software package at one version, with its CVE functions included."""
    seed = derive_seed(0x50F7, software)
    generator = ProgramGenerator(
        seed=seed, config=GeneratorConfig(functions_per_package=8)
    )
    package = generator.generate_package(software)
    package.name = f"{software}-{version}"
    for entry in CVE_LIBRARY:
        if entry.software != software:
            continue
        fn = vulnerable_function(entry) if vulnerable else patched_function(entry)
        package.functions.append(fn)
    return package


# -- firmware corpus ---------------------------------------------------------------


@dataclass
class BinaryProvenance:
    """Generation-time ground truth for one firmware binary."""

    software: str
    version: str
    vulnerable: bool
    # vulnerable function name -> stripped display name (sub_<addr>)
    vuln_function_addresses: Dict[str, str] = field(default_factory=dict)


@dataclass
class FirmwareDataset:
    """The searchable firmware corpus plus its ground truth."""

    images: List[FirmwareImage] = field(default_factory=list)
    # (image identifier, binary name) -> provenance
    provenance: Dict[Tuple[str, str], BinaryProvenance] = field(default_factory=dict)

    def n_unpackable(self) -> int:
        return sum(1 for image in self.images if not image.unknown_format)


def build_firmware_dataset(
    n_images: int = 24,
    seed: int = 0,
    unknown_format_fraction: float = 0.1,
    vulnerable_fraction: float = 0.5,
) -> FirmwareDataset:
    """Generate vendor firmware images with implanted vulnerabilities."""
    rng = RNG(seed)
    softwares = sorted({entry.software for entry in CVE_LIBRARY}) + ["busybox"]
    versions = {
        "openssl": ("1.0.1", "1.0.2t"),
        "wget": ("1.15", "1.16"),
        "libcurl": ("7.50.0", "7.51.0"),
        "vsftpd": ("2.3.2", "2.3.3"),
        "busybox": ("1.30", "1.31"),
    }
    # Pre-compile every (software, version, arch) once; images reuse them.
    compiled: Dict[Tuple[str, str, str], object] = {}
    dataset = FirmwareDataset()
    vendors = sorted(_VENDOR_MODELS)
    arches = [a for a, _w in _ARCH_WEIGHTS]
    weights = [w for _a, w in _ARCH_WEIGHTS]
    for i in range(n_images):
        image_rng = rng.child("image", i)
        vendor = image_rng.choice(vendors)
        model = image_rng.choice(_VENDOR_MODELS[vendor])
        fw_version = f"{image_rng.randint(1, 3)}.0.{image_rng.randint(0, 9)}"
        arch = image_rng.choice(arches, weights=weights)
        unknown = image_rng.random() < unknown_format_fraction
        n_binaries = image_rng.randint(1, 2)
        chosen = image_rng.sample(softwares, n_binaries)
        binaries = []
        provenances = []
        for software in chosen:
            vulnerable = image_rng.random() < vulnerable_fraction
            old, new = versions[software]
            version = old if vulnerable else new
            key = (software, version, arch)
            if key not in compiled:
                package = software_package(software, version, vulnerable)
                compiled[key] = compile_package(package, arch)
            binary = compiled[key]
            stripped = binary.strip()
            info = BinaryProvenance(
                software=software, version=version, vulnerable=vulnerable
            )
            if vulnerable:
                for entry in CVE_LIBRARY:
                    if entry.software != software:
                        continue
                    record = binary.function_named(entry.function_name)
                    info.vuln_function_addresses[entry.function_name] = (
                        f"sub_{record.address:x}"
                    )
            binaries.append(stripped)
            provenances.append(info)
        image = pack_firmware(
            vendor, model, fw_version, binaries,
            seed=derive_seed(seed, "pack", i), unknown_format=unknown,
        )
        dataset.images.append(image)
        for binary, info in zip(binaries, provenances):
            dataset.provenance[(image.identifier, binary.name)] = info
    return dataset


# -- search ------------------------------------------------------------------------


@dataclass
class Candidate:
    """One above-threshold match."""

    entry: CVEEntry
    image: FirmwareImage
    binary_name: str
    function_name: str  # stripped display name
    score: float
    criterion_a: bool = False
    criterion_b: bool = False
    confirmed: bool = False


@dataclass
class CVEReport:
    """One Table-IV row."""

    entry: CVEEntry
    n_candidates: int
    n_confirmed: int
    vendors: Tuple[str, ...]
    models: Tuple[str, ...]


@dataclass
class SearchReport:
    rows: List[CVEReport] = field(default_factory=list)
    n_images: int = 0
    n_unpacked: int = 0
    n_functions: int = 0
    n_candidates: int = 0

    def total_confirmed(self) -> int:
        return sum(row.n_confirmed for row in self.rows)


class VulnerabilitySearch:
    """Runs the paper's end-to-end vulnerability search.

    Two execution paths produce identical reports:

    * :meth:`search` (default) -- the offline/online split: the corpus is
      ingested once into an :class:`~repro.index.store.EmbeddingStore` and
      each CVE queried through the batched
      :class:`~repro.index.search.SearchService`;
    * :meth:`search_exhaustive` -- the original protocol: score every
      (CVE, function) pair with per-pair Python calls.  Kept as the
      reference the index path is validated against.

    The search is a client of :class:`~repro.api.engine.AsteriaEngine`:
    pass ``engine`` to share an existing one, or use the deprecated
    compatibility constructor (``model`` [+ ``cache``/``jobs``]) and a
    private engine is assembled for you.  Either way, corpus and
    query-side encodings run through the engine's one artifact cache and
    staged pipeline, so warm re-runs skip decompile + encode.
    """

    def __init__(
        self,
        model: Optional[Asteria] = None,
        threshold: float = 0.84,
        cache: Optional[ArtifactCache] = None,
        jobs: int = 1,
        engine: Optional[AsteriaEngine] = None,
    ):
        if engine is None:
            if model is None:
                raise ValueError(
                    "VulnerabilitySearch needs a model or an engine"
                )
            engine = AsteriaEngine(
                EngineConfig(jobs=max(1, int(jobs)), threshold=threshold),
                model=model,
                cache=cache,
            )
        self.engine = engine
        self.model = engine.model
        self.threshold = threshold
        self.cache = engine.cache
        self.jobs = engine.config.jobs
        self.pipeline = engine.pipeline

    def build_index(
        self,
        dataset: FirmwareDataset,
        root=None,
        backend: str = "exact",
        shard_size: int = 1024,
        encode_batch_size: Optional[int] = None,
        **backend_options,
    ):
        """Offline phase: ingest the firmware corpus into a search service.

        ``root=None`` keeps the store in memory; pass a directory to make
        the index durable across runs (``repro-cli index build``).
        ``encode_batch_size`` sets how many trees the level-batched encoder
        stacks per pass (None keeps the service default).
        """
        service = self.engine.make_service(
            root=root, backend=backend, shard_size=shard_size,
            encode_batch_size=encode_batch_size,
            meta={"corpus": "firmware", "threshold": self.threshold},
            **backend_options,
        )
        service.ingest_firmware(dataset.images)
        return service

    def encode_library(self) -> Dict[str, Tuple[CVEEntry, FunctionEncoding]]:
        """Compile + decompile + encode the 7 vulnerable functions (on x86,
        the architecture the reference CVE builds use).

        Query-side encodings run through the same artifact cache as the
        corpus, so repeat searches skip re-decompiling and re-encoding
        the library.  (The encoding itself lives on the engine so every
        consumer shares one library per model.)
        """
        return self.engine.cve_library()

    def index_firmware(
        self, dataset: FirmwareDataset
    ) -> List[Tuple[FirmwareImage, str, FunctionEncoding]]:
        """Unpack, decompile and encode every firmware function.

        Runs the staged pipeline (cached, optionally parallel); the
        returned list keeps the seed's ``(image, binary name, encoding)``
        shape for :meth:`search_exhaustive`.
        """
        result = self.pipeline.run_images(dataset.images)
        images_by_id = {image.identifier: image for image in dataset.images}
        _LOG.info(
            "indexed %d functions (%d images unidentifiable)",
            result.stats.n_functions, result.stats.n_unpack_failures,
        )
        return [
            (images_by_id[image_id], encoding.binary_name, encoding)
            for image_id, encoding in result.encodings
        ]

    def search(
        self,
        dataset: FirmwareDataset,
        firmware_index: Optional[List] = None,
        service=None,
        top_k: Optional[int] = None,
    ) -> Tuple[SearchReport, List[Candidate]]:
        """Run the full protocol and produce the Table-IV report.

        Runs through the embedding index by default (building an ephemeral
        one unless ``service`` is given).  Passing ``firmware_index`` -- a
        pre-built encoding list from :meth:`index_firmware` -- selects the
        exhaustive per-pair path instead (back-compat).  ``top_k`` caps the
        candidates considered per CVE (None keeps every above-threshold
        match, the paper's protocol).
        """
        if firmware_index is not None:
            return self.search_exhaustive(dataset, firmware_index)
        if service is None:
            service = self.build_index(dataset)
        library = self.encode_library()
        images_by_id = {image.identifier: image for image in dataset.images}
        candidates: List[Candidate] = []
        entries = sorted(library.items())
        # one batched top-k for the whole CVE library: the corpus is swept
        # once, each shard block scored against all queries in one GEMM
        hit_lists = service.query_batch(
            [vuln_encoding for _cve_id, (_e, vuln_encoding) in entries],
            top_k=top_k, threshold=self.threshold,
        )
        for (_cve_id, (entry, _vuln_encoding)), hits in zip(
            entries, hit_lists
        ):
            # store-row order mirrors the exhaustive scan's corpus order
            for hit in sorted(hits, key=lambda h: h.row):
                image = images_by_id.get(hit.image_id)
                if image is None:
                    raise ValueError(
                        f"index row {hit.row} references image "
                        f"{hit.image_id!r}, which is not in the dataset -- "
                        f"was the index built from this corpus?"
                    )
                candidates.append(
                    Candidate(
                        entry=entry,
                        image=image,
                        binary_name=hit.binary_name,
                        function_name=hit.name,
                        score=hit.score,
                    )
                )
        self._confirm(candidates, dataset)
        return self._report(dataset, len(service.store), candidates), candidates

    def search_exhaustive(
        self,
        dataset: FirmwareDataset,
        firmware_index: Optional[List] = None,
    ) -> Tuple[SearchReport, List[Candidate]]:
        """The seed's per-pair O(corpus) scan (reference implementation)."""
        library = self.encode_library()
        index = firmware_index if firmware_index is not None \
            else self.index_firmware(dataset)
        candidates: List[Candidate] = []
        for _cve_id, (entry, vuln_encoding) in sorted(library.items()):
            for image, binary_name, encoding in index:
                score = self.model.similarity(vuln_encoding, encoding)
                if score < self.threshold:
                    continue
                candidates.append(
                    Candidate(
                        entry=entry,
                        image=image,
                        binary_name=binary_name,
                        function_name=encoding.name,
                        score=score,
                    )
                )
        self._confirm(candidates, dataset)
        return self._report(dataset, len(index), candidates), candidates

    def _report(
        self,
        dataset: FirmwareDataset,
        n_functions: int,
        candidates: List[Candidate],
    ) -> SearchReport:
        report = SearchReport(
            n_images=len(dataset.images),
            n_unpacked=dataset.n_unpackable(),
            n_functions=n_functions,
            n_candidates=len(candidates),
        )
        for entry in CVE_LIBRARY:
            confirmed = [
                c for c in candidates if c.entry == entry and c.confirmed
            ]
            report.rows.append(
                CVEReport(
                    entry=entry,
                    n_candidates=sum(1 for c in candidates if c.entry == entry),
                    n_confirmed=len(confirmed),
                    vendors=tuple(sorted({c.image.vendor for c in confirmed})),
                    models=tuple(sorted({c.image.model for c in confirmed})),
                )
            )
        return report

    def _confirm(self, candidates: List[Candidate], dataset: FirmwareDataset) -> None:
        """Apply criteria A and B, then 'manual analysis' via ground truth."""
        for candidate in candidates:
            provenance = dataset.provenance.get(
                (candidate.image.identifier, candidate.binary_name)
            )
            if provenance is None:
                continue
            expected = f"{candidate.entry.software}-{candidate.entry.vulnerable_version}"
            candidate.criterion_a = candidate.binary_name == expected
            candidate.criterion_b = candidate.score >= 0.999
            truly_vulnerable = (
                provenance.vuln_function_addresses.get(
                    candidate.entry.function_name
                )
                == candidate.function_name
            )
            if candidate.criterion_a and candidate.criterion_b:
                candidate.confirmed = True
            elif candidate.criterion_a or candidate.criterion_b:
                # manual analysis of the assembly, simulated by ground truth
                candidate.confirmed = truly_vulnerable
            else:
                candidate.confirmed = False
