"""Evaluation suite: metrics, dataset builders, vulnerability search, timing."""

from repro.evalsuite.metrics import (
    confusion_counts,
    roc_auc,
    roc_curve,
    youden_threshold,
)

__all__ = ["confusion_counts", "roc_auc", "roc_curve", "youden_threshold"]
