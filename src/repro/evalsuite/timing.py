"""Computational-overhead measurements (paper §IV-F, Figure 10).

Asteria's offline stages are the corpus pipeline's stage functions
(:mod:`repro.pipeline.stages`) -- timed per function here, and in
aggregate through the instrumented :class:`~repro.pipeline.corpus.CorpusPipeline`
by :func:`measure_offline_pipeline`.  Measured:

* offline phase, per function -- decompilation (A-D), preprocessing (A-P)
  and Tree-LSTM encoding (A-E) for Asteria; AST hashing for Diaphora
  (D-H); ACFG extraction (G-EX) and graph encoding (G-EN) for Gemini;
* offline phase, per stage -- the staged pipeline's own instrumentation
  (stage totals, worker wall time, cache hit/miss accounting), cold or
  warm (:func:`measure_offline_pipeline`);
* batched offline encoding -- amortised per-function A-E through the
  level-batched engine, reported alongside the per-tree number
  (:func:`measure_encode_batched`);
* online phase -- similarity computation on cached artefacts for all three
  approaches;
* the AST size CDF (Figure 10a).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.diaphora import DiaphoraMatcher
from repro.baselines.gemini.acfg import extract_acfg
from repro.baselines.gemini.model import Gemini
from repro.core.model import Asteria
from repro.core.preprocess import try_preprocess_ast
from repro.decompiler.hexrays import DecompilationError
from repro.api.config import EngineConfig
from repro.api.engine import AsteriaEngine
from repro.evalsuite.datasets import Dataset
from repro.pipeline import ArtifactCache, PipelineStats
from repro.pipeline.stages import decompile_one, preprocess_one
from repro.utils.rng import RNG


@dataclass
class OfflineRow:
    """Per-function offline timings, keyed by AST/CFG size."""

    function_name: str
    arch: str
    ast_size: int
    cfg_size: int
    decompile_s: float  # A-D
    preprocess_s: float  # A-P
    encode_s: float  # A-E
    diaphora_hash_s: float  # D-H
    gemini_extract_s: float  # G-EX
    gemini_encode_s: float  # G-EN


@dataclass
class BatchedEncodeStats:
    """Per-tree vs level-batched A-E over the same sampled functions."""

    batch_size: int
    n_functions: int
    sequential_s: float  # total per-tree encode wall time
    batched_s: float  # total level-batched encode wall time

    @property
    def sequential_per_function_s(self) -> float:
        return self.sequential_s / max(1, self.n_functions)

    @property
    def batched_per_function_s(self) -> float:
        return self.batched_s / max(1, self.n_functions)

    @property
    def speedup(self) -> float:
        return self.sequential_s / self.batched_s if self.batched_s else 0.0


@dataclass
class OnlineStats:
    """Average per-pair online similarity times (Figure 10c)."""

    asteria_s: float
    gemini_s: float
    diaphora_s: float
    n_pairs: int


def ast_size_cdf(sizes: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted sizes and cumulative fractions (Figure 10a)."""
    sorted_sizes = np.sort(np.asarray(sizes, dtype=np.int64))
    fractions = np.arange(1, len(sorted_sizes) + 1) / len(sorted_sizes)
    return sorted_sizes, fractions


def measure_offline(
    dataset: Dataset,
    asteria: Asteria,
    gemini: Gemini,
    max_functions: int = 50,
    seed: int = 0,
) -> List[OfflineRow]:
    """Time the offline phases of all three approaches on sampled functions."""
    diaphora = DiaphoraMatcher()
    rows: List[OfflineRow] = []
    candidates = []
    for arch, binaries in sorted(dataset.binaries.items()):
        for binary in binaries:
            for record in binary.functions:
                candidates.append((binary, record))
    rng = RNG(seed)
    if len(candidates) > max_functions:
        candidates = rng.sample(candidates, max_functions)
    for binary, record in candidates:
        started = time.perf_counter()
        try:
            decompiled = decompile_one(binary, record)
        except DecompilationError:
            continue
        decompile_s = time.perf_counter() - started

        started = time.perf_counter()
        tree = preprocess_one(decompiled, asteria.config.min_ast_size)
        preprocess_s = time.perf_counter() - started
        if tree is None:
            continue

        started = time.perf_counter()
        asteria.encode_tree(tree)
        encode_s = time.perf_counter() - started

        started = time.perf_counter()
        diaphora.features(decompiled.ast)
        diaphora_hash_s = time.perf_counter() - started

        started = time.perf_counter()
        acfg = extract_acfg(binary, record)
        gemini_extract_s = time.perf_counter() - started

        started = time.perf_counter()
        gemini.encode(acfg)
        gemini_encode_s = time.perf_counter() - started

        rows.append(
            OfflineRow(
                function_name=decompiled.name,
                arch=decompiled.arch,
                ast_size=decompiled.ast_size(),
                cfg_size=acfg.n_blocks,
                decompile_s=decompile_s,
                preprocess_s=preprocess_s,
                encode_s=encode_s,
                diaphora_hash_s=diaphora_hash_s,
                gemini_extract_s=gemini_extract_s,
                gemini_encode_s=gemini_encode_s,
            )
        )
    return rows


def measure_offline_pipeline(
    dataset: Dataset,
    asteria: Asteria,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    encode_batch_size: int = 64,
) -> PipelineStats:
    """Aggregate per-stage offline times through the staged corpus pipeline.

    Complements :func:`measure_offline`'s per-function rows: every binary
    of the dataset runs through :class:`~repro.pipeline.corpus.CorpusPipeline`,
    whose instrumentation reports stage totals plus cache hit/miss
    accounting.  Passing a warm ``cache`` shows the offline phase
    collapsing to cache reads (near-zero decompile/encode seconds).
    """
    binaries = [
        binary
        for arch in sorted(dataset.binaries)
        for binary in dataset.binaries[arch]
    ]
    pipeline = AsteriaEngine(
        EngineConfig(jobs=jobs, encode_batch_size=encode_batch_size),
        model=asteria,
        cache=cache,
    ).pipeline
    return pipeline.run_binaries(binaries).stats


def corpus_trees(dataset: Dataset, min_ast_size: int) -> list:
    """Every corpus function's preprocessed tree (too-small ASTs dropped).

    Shared by the batched-encode measurement here and the throughput
    benchmark, so both always sample with identical eligibility rules.
    """
    trees = []
    for arch in sorted(dataset.functions):
        for fn in dataset.functions[arch]:
            tree = try_preprocess_ast(fn.ast, min_ast_size)
            if tree is not None:
                trees.append(tree)
    return trees


def measure_encode_batched(
    dataset: Dataset,
    asteria: Asteria,
    batch_size: int = 64,
    max_functions: int = 200,
    seed: int = 0,
) -> BatchedEncodeStats:
    """Amortised A-E through the level-batched engine vs per-tree encoding.

    Both paths encode the same preprocessed trees, so the ratio isolates
    exactly the gain of stacking same-level nodes into shared GEMMs.
    """
    trees = corpus_trees(dataset, asteria.config.min_ast_size)
    if not trees:
        raise ValueError("no encodable functions in the dataset")
    rng = RNG(seed)
    if len(trees) > max_functions:
        trees = rng.sample(trees, max_functions)

    started = time.perf_counter()
    for tree in trees:
        asteria.encode_tree(tree)
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    asteria.encode_batch(trees, batch_size=batch_size)
    batched_s = time.perf_counter() - started

    return BatchedEncodeStats(
        batch_size=batch_size,
        n_functions=len(trees),
        sequential_s=sequential_s,
        batched_s=batched_s,
    )


def measure_online(
    dataset: Dataset,
    asteria: Asteria,
    gemini: Gemini,
    n_pairs: int = 200,
    seed: int = 0,
) -> OnlineStats:
    """Time the online (per-pair) similarity of all three approaches.

    All inputs are precomputed (encodings / multisets), isolating exactly
    the per-pair comparison cost the paper reports in Figure 10(c).
    """
    diaphora = DiaphoraMatcher()
    rng = RNG(seed)
    functions = []
    for arch in sorted(dataset.functions):
        functions.extend(dataset.functions[arch])
    functions = [
        fn for fn in functions
        if fn.ast_size() >= asteria.config.min_ast_size
    ]
    if len(functions) < 2:
        raise ValueError("need at least two functions")
    sample = [
        (rng.choice(functions), rng.choice(functions)) for _ in range(n_pairs)
    ]
    asteria_enc = {}
    gemini_enc = {}
    diaphora_feat = {}
    for fn in {id(f): f for pair in sample for f in pair}.values():
        key = id(fn)
        asteria_enc[key] = asteria.encode_function(fn)
        gemini_enc[key] = gemini.encode(dataset.acfg_for(fn))
        diaphora_feat[key] = diaphora.features(fn.ast)

    started = time.perf_counter()
    for a, b in sample:
        asteria.similarity(asteria_enc[id(a)], asteria_enc[id(b)])
    asteria_s = (time.perf_counter() - started) / n_pairs

    started = time.perf_counter()
    for a, b in sample:
        gemini.similarity_from_vectors(gemini_enc[id(a)], gemini_enc[id(b)])
    gemini_s = (time.perf_counter() - started) / n_pairs

    started = time.perf_counter()
    for a, b in sample:
        diaphora.similarity_from_features(diaphora_feat[id(a)], diaphora_feat[id(b)])
    diaphora_s = (time.perf_counter() - started) / n_pairs

    return OnlineStats(
        asteria_s=asteria_s,
        gemini_s=gemini_s,
        diaphora_s=diaphora_s,
        n_pairs=n_pairs,
    )
