"""Dataset builders mirroring the paper's three corpora (§IV-B).

* **Buildroot** -- many packages cross-compiled for four architectures,
  symbols retained; used for training/testing.
* **OpenSSL** -- one larger package cross-compiled the same way; used for
  the comparative evaluation.
* **Firmware** -- vendor images containing *stripped* binaries, some with
  implanted vulnerable functions; used for the vulnerability search
  (built in :mod:`repro.evalsuite.vulnsearch`).

All corpora are generated deterministically from a seed; sizes are scaled
down from the paper's (millions of functions) to laptop scale but keep the
structure: per-arch binaries, name-based ground truth, 8:2 splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.gemini.acfg import ACFG, extract_acfg
from repro.binformat.binary import BinaryFile
from repro.compiler.isa import SUPPORTED_ARCHES
from repro.compiler.pipeline import CompilationOptions, compile_package
from repro.decompiler.hexrays import DecompiledFunction
from repro.lang.generator import GeneratorConfig, ProgramGenerator
from repro.pipeline.stages import decompile_stage
from repro.lang.nodes import Package
from repro.utils.logging import get_logger

_LOG = get_logger("evalsuite.datasets")


@dataclass
class DatasetConfig:
    """Knobs for corpus generation."""

    n_packages: int = 10
    functions_per_package: int = 12
    arches: Tuple[str, ...] = SUPPORTED_ARCHES
    seed: int = 0
    name_prefix: str = "pkg"
    generator: Optional[GeneratorConfig] = None
    compilation: Optional[CompilationOptions] = None


@dataclass
class ArchStats:
    """One Table-II row."""

    arch: str
    n_binaries: int
    n_functions: int


@dataclass
class Dataset:
    """A cross-compiled corpus with decompiled functions per architecture."""

    name: str
    binaries: Dict[str, List[BinaryFile]] = field(default_factory=dict)
    functions: Dict[str, List[DecompiledFunction]] = field(default_factory=dict)
    packages: List[Package] = field(default_factory=list)
    _binary_index: Dict[Tuple[str, str], BinaryFile] = field(default_factory=dict)
    _acfg_cache: Dict[Tuple[str, str, str], ACFG] = field(default_factory=dict)

    def stats(self) -> List[ArchStats]:
        """Per-architecture binary/function counts (the Table II rows)."""
        return [
            ArchStats(
                arch=arch,
                n_binaries=len(self.binaries.get(arch, [])),
                n_functions=sum(
                    len(b.functions) for b in self.binaries.get(arch, [])
                ),
            )
            for arch in sorted(self.binaries)
        ]

    def total_functions(self) -> int:
        return sum(s.n_functions for s in self.stats())

    def binary_for(self, arch: str, binary_name: str) -> BinaryFile:
        return self._binary_index[(arch, binary_name)]

    def acfg_for(self, fn: DecompiledFunction) -> ACFG:
        """ACFG of a decompiled function (cached; used by the Gemini baseline)."""
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in self._acfg_cache:
            binary = self.binary_for(fn.arch, fn.binary_name)
            record = binary.function_named(fn.name)
            self._acfg_cache[key] = extract_acfg(binary, record)
        return self._acfg_cache[key]

    def add_binary(self, binary: BinaryFile) -> None:
        """Register a binary and its functions (pipeline Decompile stage)."""
        self.binaries.setdefault(binary.arch, []).append(binary)
        self._binary_index[(binary.arch, binary.name)] = binary
        self.functions.setdefault(binary.arch, []).extend(
            decompile_stage(binary)
        )


def build_dataset(config: DatasetConfig, name: str) -> Dataset:
    """Generate packages, cross-compile, and decompile everything."""
    generator_config = config.generator or GeneratorConfig(
        functions_per_package=config.functions_per_package
    )
    generator = ProgramGenerator(seed=config.seed, config=generator_config)
    dataset = Dataset(name=name)
    for i in range(config.n_packages):
        package = generator.generate_package(f"{config.name_prefix}{i}")
        dataset.packages.append(package)
        for arch in config.arches:
            binary = compile_package(package, arch, config.compilation)
            dataset.add_binary(binary)
    _LOG.info(
        "dataset %s: %d packages, %d functions",
        name, config.n_packages, dataset.total_functions(),
    )
    return dataset


def build_buildroot_dataset(
    n_packages: int = 10,
    functions_per_package: int = 12,
    seed: int = 0,
    arches: Sequence[str] = SUPPORTED_ARCHES,
) -> Dataset:
    """The training/testing corpus (paper: 260 packages via buildroot)."""
    config = DatasetConfig(
        n_packages=n_packages,
        functions_per_package=functions_per_package,
        arches=tuple(arches),
        seed=seed,
        name_prefix="br",
    )
    return build_dataset(config, "buildroot")


def build_openssl_dataset(
    n_functions: int = 40,
    seed: int = 1,
    arches: Sequence[str] = SUPPORTED_ARCHES,
) -> Dataset:
    """The comparative-evaluation corpus (paper: OpenSSL 1.1.0a).

    One large package named ``openssl`` so that pair identities mimic the
    paper's OpenSSL dataset.
    """
    config = DatasetConfig(
        n_packages=1,
        functions_per_package=n_functions,
        arches=tuple(arches),
        seed=seed,
        name_prefix="openssl",
    )
    dataset = build_dataset(config, "openssl")
    return dataset
