"""Evaluation metrics (paper §IV-D): ROC, AUC, and the Youden index.

Implemented from scratch on numpy (no sklearn in the environment): the ROC
curve sweeps the decision threshold over all observed scores, and AUC is the
trapezoidal area under it.  The Youden index J = TPR - FPR picks the
vulnerability-search threshold (§V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def _validate(labels: Sequence[int], scores: Sequence[float]):
    labels = np.asarray(labels, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.size == 0:
        raise ValueError("empty input")
    if not np.all((labels == 0) | (labels == 1)):
        raise ValueError("labels must be 0/1")
    return labels, scores


def roc_curve(
    labels: Sequence[int], scores: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute (fpr, tpr, thresholds), threshold-descending.

    Points are computed at every distinct score, plus the (0,0) and (1,1)
    endpoints.
    """
    labels, scores = _validate(labels, scores)
    n_pos = int(labels.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("need both positive and negative labels")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    # Keep only the last cumulative point of each distinct score.
    distinct = np.nonzero(np.diff(sorted_scores, append=np.nan))[0]
    tpr = np.concatenate([[0.0], tps[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fps[distinct] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return fpr, tpr, thresholds


def roc_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve (trapezoidal rule)."""
    fpr, tpr, _thresholds = roc_curve(labels, scores)
    # numpy >= 2 renamed trapz to trapezoid
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


def youden_threshold(labels: Sequence[int], scores: Sequence[float]) -> Tuple[float, float]:
    """Threshold maximising the Youden index J = TPR - FPR.

    Returns ``(threshold, J)``.
    """
    fpr, tpr, thresholds = roc_curve(labels, scores)
    j = tpr - fpr
    best = int(np.argmax(j))
    threshold = thresholds[best]
    if not np.isfinite(threshold):
        threshold = float(thresholds[1]) if len(thresholds) > 1 else 1.0
    return float(threshold), float(j[best])


@dataclass
class Confusion:
    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def tpr(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def fpr(self) -> float:
        return self.fp / (self.fp + self.tn) if (self.fp + self.tn) else 0.0

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0


def confusion_counts(
    labels: Sequence[int], scores: Sequence[float], threshold: float
) -> Confusion:
    """TP/FP/TN/FN at a threshold (score >= threshold is positive)."""
    labels, scores = _validate(labels, scores)
    predicted = scores >= threshold
    actual = labels == 1
    return Confusion(
        tp=int(np.sum(predicted & actual)),
        fp=int(np.sum(predicted & ~actual)),
        tn=int(np.sum(~predicted & ~actual)),
        fn=int(np.sum(~predicted & actual)),
    )


def tpr_at_fpr(labels: Sequence[int], scores: Sequence[float], fpr_cap: float) -> float:
    """Highest TPR achievable with FPR <= cap (paper quotes TPR at 5% FPR)."""
    fpr, tpr, _ = roc_curve(labels, scores)
    mask = fpr <= fpr_cap
    return float(tpr[mask].max()) if mask.any() else 0.0
