"""Command-line interface: thin adapters over :class:`AsteriaEngine`.

Subcommands mirror the workflows a user of the paper's tooling would run:

* ``repro-cli generate``     -- generate a source package and print it;
* ``repro-cli compile``      -- cross-compile a generated package to RBIN;
* ``repro-cli disasm``       -- disassemble a binary file;
* ``repro-cli decompile``    -- decompile a binary file to pseudocode;
* ``repro-cli train``        -- train an Asteria model and save a checkpoint;
* ``repro-cli compare``      -- score two functions of two binaries;
* ``repro-cli search``       -- run the firmware vulnerability search;
* ``repro-cli pipeline run`` -- run the staged offline pipeline
  (unpack -> decompile -> preprocess -> encode -> index) over a firmware
  corpus, printing per-stage times and cache hit/miss accounting;
* ``repro-cli index build``  -- encode a firmware corpus into a persistent
  embedding index (the offline phase, run once);
* ``repro-cli index search`` -- top-k CVE queries against a built index
  (the online phase: one batched top-k pass for the whole CVE library,
  no corpus re-encoding);
* ``repro-cli corpus synth`` -- mass-produce a synthetic embedding corpus
  (cluster geometry with known ground-truth neighbors) for exercising
  the tiered ANN index at million-function scale;
* ``repro-cli serve``        -- the HTTP/JSON serving layer: one engine,
  concurrent queries micro-batched into shared encode GEMMs.

Every model/cache/index-touching subcommand builds one
:class:`~repro.api.config.EngineConfig` via ``EngineConfig.from_args``
(the shared ``--jobs``/``--cache-dir``/``--batch-size`` plumbing) and
talks to one :class:`~repro.api.engine.AsteriaEngine`.  Engine errors
surface as one-line ``error: ...`` messages with distinct exit codes:
3 = missing model, 4 = missing input binary/firmware, 5 = index store
problems, 6 = bad request (unknown function/CVE, bad config).

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import (
    AsteriaEngine,
    CompareRequest,
    IngestRequest,
    QueryRequest,
    TrainRequest,
)
from repro.api.errors import (
    BadRequestError,
    EngineError,
    InputNotFoundError,
)
from repro.binformat.binary import BinaryFile
from repro.lang.generator import ProgramGenerator
from repro.lang.printer import to_source


def _engine(args, **overrides) -> AsteriaEngine:
    """The one construction path every subcommand shares."""
    return AsteriaEngine(EngineConfig.from_args(args, **overrides))


def _cmd_generate(args) -> int:
    package = ProgramGenerator(seed=args.seed).generate_package(args.name)
    for fn in package.functions:
        print(to_source(fn))
        print()
    return 0


def _cmd_compile(args) -> int:
    from repro.compiler.pipeline import compile_package

    package = ProgramGenerator(seed=args.seed).generate_package(args.name)
    for arch in args.arch:
        binary = compile_package(package, arch)
        if args.strip:
            binary = binary.strip()
        path = Path(args.output) / f"{args.name}.{arch}.rbin"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(binary.to_bytes())
        print(f"wrote {path} ({len(binary.functions)} functions, "
              f"{path.stat().st_size} bytes)")
    return 0


def _load_binary(path: str) -> BinaryFile:
    if not Path(path).exists():
        raise InputNotFoundError(f"no such binary: {path}")
    return BinaryFile.from_bytes(Path(path).read_bytes())


def _cmd_disasm(args) -> int:
    from repro.disasm import disassemble_binary

    binary = _load_binary(args.binary)
    for asm in disassemble_binary(binary):
        if args.function and asm.name != args.function:
            continue
        print(asm.render())
        print()
    return 0


def _cmd_decompile(args) -> int:
    from repro.decompiler import decompile_binary
    from repro.lang.printer import _stmt_lines

    binary = _load_binary(args.binary)
    for fn in decompile_binary(binary, skip_errors=True):
        if args.function and fn.name != args.function:
            continue
        print(f"// {fn.name} ({fn.arch}, {fn.n_instructions} instructions, "
              f"{fn.ast_size()} AST nodes)")
        print("\n".join(_stmt_lines(fn.ast, 0)))
        print()
    return 0


def _cmd_train(args) -> int:
    engine = _engine(args, model_path=None)
    result = engine.train(TrainRequest(
        packages=args.packages,
        pairs=args.pairs,
        epochs=args.epochs,
        embedding_dim=args.dim,
        batch_size=args.batch_size,
        seed=args.seed,
        output_path=args.output,
    ))
    print(f"{result.n_train} training pairs, {result.n_dev} dev pairs")
    print(f"best dev AUC: {result.best_auc:.4f} "
          f"(epoch {result.best_epoch})")
    print(f"saved model to {result.model_path}")
    return 0


def _cmd_compare(args) -> int:
    engine = _engine(args)
    result = engine.compare(CompareRequest(
        binary1=args.binary1, function1=args.function1,
        binary2=args.binary2, function2=args.function2,
    ))
    print(f"M (AST similarity):        {result.ast_similarity:.4f}")
    print(f"F (calibrated similarity): {result.similarity:.4f}")
    return 0


def _cmd_search(args) -> int:
    from repro.evalsuite.vulnsearch import (
        VulnerabilitySearch,
        build_firmware_dataset,
    )

    engine = _engine(args)
    dataset = build_firmware_dataset(n_images=args.images, seed=args.seed)
    search = VulnerabilitySearch(engine=engine, threshold=args.threshold)
    report, _candidates = search.search(dataset, top_k=args.top_k)
    print(f"unpacked {report.n_unpacked}/{report.n_images} images, "
          f"indexed {report.n_functions} functions")
    for row in report.rows:
        print(f"{row.entry.cve_id:<15} {row.entry.software:<9} "
              f"confirmed={row.n_confirmed} "
              f"models={','.join(row.models) or '-'}")
    print(f"total confirmed: {report.total_confirmed()}")
    return 0


def _cmd_pipeline_run(args) -> int:
    engine = _engine(args, index_root=args.output)
    if args.output:
        engine.create_index()
    result = engine.ingest(IngestRequest(
        corpus_images=args.images, corpus_seed=args.seed
    ))
    print(result.pipeline.summary())
    if args.output:
        print(f"wrote {engine.store.n_shards} shard(s) to {args.output}")
    return 0


def _cmd_index_build(args) -> int:
    engine = _engine(args, index_root=args.output)
    engine.create_index(meta={"corpus": "firmware"})
    result = engine.ingest(IngestRequest(
        corpus_images=args.images, corpus_seed=args.seed
    ))
    n_unpackable = result.n_images - result.n_unpack_failures
    print(f"ingested {result.n_rows_total} functions from "
          f"{n_unpackable}/{result.n_images} unpackable images")
    print(f"wrote {engine.store.n_shards} shard(s) to {args.output}")
    return 0


def _cmd_index_search(args) -> int:
    engine = _engine(args)
    engine.open_index()
    library = engine.cve_library()
    wanted = set(args.cve) if args.cve else None
    if wanted:
        unknown = wanted - set(library)
        if unknown:
            print(f"error: unknown CVE id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 6
    n_indexed = len(engine.store)
    selected = [
        (cve_id, entry)
        for cve_id, (entry, _encoding) in sorted(library.items())
        if wanted is None or cve_id in wanted
    ]
    # the whole CVE library is one batched top-k: every corpus shard is
    # swept once for all queries instead of once per CVE
    results = engine.query_batch([
        QueryRequest(cve_id=cve_id, top_k=args.top_k,
                     threshold=args.threshold)
        for cve_id, _entry in selected
    ])
    for (cve_id, entry), result in zip(selected, results):
        print(f"{cve_id} ({entry.software} {entry.function_name}), "
              f"top {len(result.hits)} of {n_indexed} indexed functions:")
        for rank, hit in enumerate(result.hits, start=1):
            print(f"  {rank:>2}. score={hit.score:.4f} {hit.image_id} "
                  f"{hit.binary_name} {hit.name} [{hit.arch}]")
    return 0


def _cmd_corpus_synth(args) -> int:
    from repro.index.store import EmbeddingStore
    from repro.index.synth import SynthSpec, seed_encodings, synth_corpus

    try:
        spec = SynthSpec(
            n_functions=args.functions, dim=args.dim,
            cluster_size=args.cluster_size, noise=args.noise,
            seed=args.seed,
        )
    except ValueError as exc:
        raise BadRequestError(str(exc)) from exc
    seeds = None
    if args.model:
        engine = _engine(args)
        hidden = engine.model.config.hidden_dim
        if hidden != args.dim:
            raise BadRequestError(
                f"--dim {args.dim} does not match the model's hidden "
                f"dim {hidden}"
            )
        seeds = seed_encodings(
            engine.pipeline, n_packages=args.seed_packages, seed=args.seed
        )
    store = EmbeddingStore.create(
        Path(args.output), dim=args.dim,
        shard_size=args.shard_size,
        dtype=args.dtype or "float32",
        meta={"corpus": "synthetic", "synth_seed": args.seed},
    )
    report = synth_corpus(store, spec, seeds=seeds)
    print(f"synthesized {report.n_functions} functions in "
          f"{report.n_clusters} clusters ({report.n_seed_centers} "
          f"anchored to pipeline encodings) in {report.elapsed_s:.1f}s")
    print(f"wrote {store.n_shards} shard(s) to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    from repro.api.server import serve

    engine = _engine(
        args,
        micro_batch_size=args.micro_batch,
        micro_batch_wait_ms=args.micro_batch_wait_ms,
        slow_query_ms=args.slow_query_ms,
    )
    return serve(engine, host=args.host, port=args.port)


def _cmd_stats(args) -> int:
    """Pretty-print a server's /v1/stats, or a local engine's stats."""
    if args.url:
        import urllib.error
        import urllib.request

        url = args.url.rstrip("/") + "/v1/stats"
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                data = json.loads(response.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise InputNotFoundError(f"could not fetch {url}: {exc}")
    else:
        engine = _engine(args)
        if args.model:
            engine.model  # load so the stats reflect the checkpoint
        if args.index:
            engine.open_index()
        data = engine.stats().to_dict()
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    config = data.pop("config", {}) or {}
    pool_workers = data.pop("pool_workers", None) or []
    width = max(len(key) for key in data)
    for key in sorted(data):
        print(f"{key:<{width}}  {data[key]}")
    if pool_workers:
        print("pool workers:")
        for worker in pool_workers:
            state = "alive" if worker.get("alive") else "DEAD"
            print(f"  worker {worker.get('worker')}  "
                  f"pid {worker.get('pid')}  {state}")
    if config:
        print("config:")
        sub_width = max(len(key) for key in config)
        for key in sorted(config):
            print(f"  {key:<{sub_width}}  {config[key]}")
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _add_pipeline_options(parser) -> None:
    """The offline-pipeline knobs shared by corpus-encoding commands."""
    parser.add_argument("--jobs", type=_positive_int, default=None,
                        help="worker processes for the decompile/"
                             "preprocess stages (results are identical "
                             "to --jobs 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact cache: warm re-runs "
                             "skip decompile + encode")
    parser.add_argument("--encode-dtype", choices=["float32", "float64"],
                        default=None,
                        help="batched-encoder inference dtype (float64 = "
                             "bit-exact reference, float32 = ~2x fast "
                             "path with rankings preserved)")
    parser.add_argument("--encode-block", type=int, default=None,
                        help="GEMM row-block size for the batched "
                             "encoder (0 = one-time auto-probe)")


def _add_ann_options(parser) -> None:
    """Query-side backend knobs (the ``ann_*`` EngineConfig fields)."""
    parser.add_argument("--backend", default=None,
                        help="ANN backend: exact (full sweep), lsh, or "
                             "ivf-pq (tiered: IVF coarse probe + int8 "
                             "quantized sweep + exact rerank); "
                             "default exact")
    parser.add_argument("--ann-nprobe", type=_positive_int, default=None,
                        help="ivf-pq: coarse partitions swept per query "
                             "(the recall-vs-speed dial; default 8)")
    parser.add_argument("--ann-rerank", type=_positive_int, default=None,
                        help="ivf-pq: exact-rerank oversampling -- "
                             "k * rerank candidates survive the "
                             "quantized sweep (default 8)")
    parser.add_argument("--ann-lists", type=int, default=None,
                        help="ivf-pq: number of coarse partitions "
                             "(default 0 = auto, ~sqrt(corpus rows))")


def _add_store_options(parser) -> None:
    """Knobs of a newly created embedding store."""
    parser.add_argument("--shard-size", type=int, default=1024)
    parser.add_argument("--dtype", choices=["float32", "float64"],
                        default=None,
                        help="vector dtype of the new index (default "
                             "float32: half the resident bytes, scores "
                             "unchanged within ~1e-6)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Asteria reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a source package")
    p.add_argument("--name", default="pkg0")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("compile", help="cross-compile a generated package")
    p.add_argument("--name", default="pkg0")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arch", nargs="+", default=["x86", "x64", "arm", "ppc"],
                   choices=["x86", "x64", "arm", "ppc"])
    p.add_argument("--strip", action="store_true",
                   help="remove the symbol table")
    p.add_argument("--output", default=".")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("disasm", help="disassemble an RBIN binary")
    p.add_argument("binary")
    p.add_argument("--function", help="only this function")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("decompile", help="decompile an RBIN binary")
    p.add_argument("binary")
    p.add_argument("--function", help="only this function")
    p.set_defaults(func=_cmd_decompile)

    p = sub.add_parser("train", help="train an Asteria model")
    p.add_argument("--packages", type=int, default=4)
    p.add_argument("--pairs", type=int, default=15)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--dim", type=int, default=16)
    p.add_argument("--batch-size", type=_positive_int, default=1,
                   help="pairs per optimiser step (1 = the paper's "
                        "per-pair setting; >1 uses the level-batched "
                        "Tree-LSTM engine)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="asteria.npz")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("compare", help="compare two binary functions")
    p.add_argument("--model", required=True)
    p.add_argument("binary1")
    p.add_argument("function1")
    p.add_argument("binary2")
    p.add_argument("function2")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("search", help="firmware vulnerability search")
    p.add_argument("--model", required=True)
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threshold", type=float, default=0.8)
    p.add_argument("--top-k", type=int, default=None,
                   help="cap candidates per CVE (default: all above "
                        "threshold)")
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "pipeline", help="staged offline corpus pipeline"
    )
    pipeline_sub = p.add_subparsers(dest="pipeline_command", required=True)

    p = pipeline_sub.add_parser(
        "run",
        help="run unpack -> decompile -> preprocess -> encode -> index "
             "over a firmware corpus, reporting per-stage times and "
             "cache hits",
    )
    p.add_argument("--model", required=True)
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=_positive_int, default=64,
                   help="trees per level-batched encode pass")
    p.add_argument("--output", default=None,
                   help="also index the encodings into a new embedding "
                        "store at this directory")
    _add_store_options(p)
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_pipeline_run)

    p = sub.add_parser("index", help="persistent embedding index")
    index_sub = p.add_subparsers(dest="index_command", required=True)

    p = index_sub.add_parser(
        "build", help="encode a firmware corpus into a persistent index"
    )
    p.add_argument("--model", required=True)
    p.add_argument("--output", required=True,
                   help="directory for the new index")
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=_positive_int, default=64,
                   help="trees per level-batched encode pass during ingest")
    _add_store_options(p)
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_index_build)

    p = index_sub.add_parser(
        "search", help="top-k CVE queries against a built index"
    )
    p.add_argument("--model", required=True)
    p.add_argument("--index", required=True,
                   help="directory of a built index")
    p.add_argument("--top-k", type=int, default=10)
    _add_ann_options(p)
    p.add_argument("--threshold", type=float, default=None,
                   help="drop hits scoring below this (default: keep "
                        "the full top-k)")
    p.add_argument("--serve-workers", type=_positive_int, default=None,
                   help="shard-parallel sweep worker processes for the "
                        "batched queries (default: 1 = in-process)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cve", nargs="*", default=None,
                   help="restrict to these CVE ids (default: whole library)")
    p.set_defaults(func=_cmd_index_search)

    p = sub.add_parser("corpus", help="synthetic corpus tools")
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)

    p = corpus_sub.add_parser(
        "synth",
        help="synthesize an embedding corpus with known ground-truth "
             "neighbor clusters (scales to millions of functions)",
    )
    p.add_argument("--output", required=True,
                   help="directory for the new index")
    p.add_argument("--functions", type=_positive_int, default=100_000)
    p.add_argument("--dim", type=_positive_int, default=64,
                   help="embedding dimensionality (must match the model "
                        "that will query the corpus)")
    p.add_argument("--cluster-size", type=_positive_int, default=16,
                   help="near-duplicate functions per ground-truth "
                        "cluster")
    p.add_argument("--noise", type=float, default=0.15,
                   help="intra-cluster perturbation scale")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--model", default=None,
                   help="anchor the first cluster centers at real "
                        "pipeline encodings from this checkpoint "
                        "(default: pure bulk synthesis)")
    p.add_argument("--seed-packages", type=_positive_int, default=4,
                   help="generated packages to compile + encode for the "
                        "seed set (with --model)")
    _add_store_options(p)
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_corpus_synth)

    p = sub.add_parser(
        "serve",
        help="HTTP/JSON serving layer (encode / ingest / query / stats)",
    )
    p.add_argument("--model", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="0 picks an ephemeral port (printed on startup)")
    p.add_argument("--index", default=None,
                   help="durable embedding index directory (opened if it "
                        "exists, created otherwise; default: in-memory)")
    p.add_argument("--batch-size", type=_positive_int, default=64,
                   help="trees per level-batched encode pass")
    p.add_argument("--micro-batch", type=_positive_int, default=64,
                   help="max concurrent query encodes coalesced into one "
                        "batched GEMM call (1 disables micro-batching)")
    p.add_argument("--micro-batch-wait-ms", type=float, default=2.0,
                   help="accumulation window a batch leader grants "
                        "late-arriving concurrent queries")
    p.add_argument("--slow-query-ms", type=float, default=None,
                   help="log the full span tree of queries slower than "
                        "this many milliseconds (default: disabled)")
    p.add_argument("--request-timeout-ms", type=float, default=None,
                   help="per-request deadline; queries still queued or "
                        "sweeping past it answer 504 (default: none)")
    p.add_argument("--max-inflight", type=_positive_int, default=None,
                   help="bound on concurrently admitted heavy requests; "
                        "excess load is shed with 503 + Retry-After "
                        "(default: 64)")
    p.add_argument("--drain-timeout-ms", type=float, default=None,
                   help="how long /v1/shutdown waits for in-flight "
                        "requests before stopping anyway (default: 5000)")
    p.add_argument("--serve-workers", type=_positive_int, default=None,
                   help="shard-parallel sweep worker processes; each "
                        "sweeps a disjoint shard range of the mmap'd "
                        "index (needs --index; default: 1 = in-process)")
    p.add_argument("--faults", default=None,
                   help="failpoint spec for chaos testing, e.g. "
                        "'store.flush.pre_rename=kill' (see repro.faults; "
                        "default: none)")
    p.add_argument("--seed", type=int, default=0)
    _add_ann_options(p)
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "stats",
        help="engine stats: a running server's /v1/stats (--url) or a "
             "local model/index snapshot",
    )
    p.add_argument("--url", default=None,
                   help="base URL of a running `repro-cli serve` "
                        "instance (e.g. http://127.0.0.1:8080)")
    p.add_argument("--model", default=None,
                   help="local model checkpoint to report on")
    p.add_argument("--index", default=None,
                   help="local embedding index directory to report on")
    p.add_argument("--json", action="store_true",
                   help="print raw JSON instead of the aligned table")
    p.set_defaults(func=_cmd_stats)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code


if __name__ == "__main__":
    sys.exit(main())
