"""Command-line interface.

Subcommands mirror the workflows a user of the paper's tooling would run:

* ``repro-cli generate``     -- generate a source package and print it;
* ``repro-cli compile``      -- cross-compile a generated package to RBIN;
* ``repro-cli disasm``       -- disassemble a binary file;
* ``repro-cli decompile``    -- decompile a binary file to pseudocode;
* ``repro-cli train``        -- train an Asteria model and save a checkpoint;
* ``repro-cli compare``      -- score two functions of two binaries;
* ``repro-cli search``       -- run the firmware vulnerability search;
* ``repro-cli pipeline run`` -- run the staged offline pipeline
  (unpack -> decompile -> preprocess -> encode -> index) over a firmware
  corpus, printing per-stage times and cache hit/miss accounting;
* ``repro-cli index build``  -- encode a firmware corpus into a persistent
  embedding index (the offline phase, run once);
* ``repro-cli index search`` -- top-k CVE queries against a built index
  (the online phase, no corpus re-encoding).

``search``, ``pipeline run`` and ``index build`` accept ``--jobs N``
(worker-pool decompile/preprocess) and ``--cache-dir DIR`` (persistent
artifact cache: warm re-runs skip decompile + encode).

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.binformat.binary import BinaryFile
from repro.core.model import Asteria, AsteriaConfig
from repro.core.pairs import build_cross_arch_pairs, split_pairs, to_tree_pairs
from repro.core.training import TrainConfig, Trainer
from repro.decompiler import decompile_binary, decompile_function
from repro.disasm import disassemble_binary
from repro.lang.generator import ProgramGenerator
from repro.lang.printer import to_source


def _cmd_generate(args) -> int:
    package = ProgramGenerator(seed=args.seed).generate_package(args.name)
    for fn in package.functions:
        print(to_source(fn))
        print()
    return 0


def _cmd_compile(args) -> int:
    from repro.compiler.pipeline import compile_package

    package = ProgramGenerator(seed=args.seed).generate_package(args.name)
    for arch in args.arch:
        binary = compile_package(package, arch)
        if args.strip:
            binary = binary.strip()
        path = Path(args.output) / f"{args.name}.{arch}.rbin"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(binary.to_bytes())
        print(f"wrote {path} ({len(binary.functions)} functions, "
              f"{path.stat().st_size} bytes)")
    return 0


def _load_binary(path: str) -> BinaryFile:
    return BinaryFile.from_bytes(Path(path).read_bytes())


def _cmd_disasm(args) -> int:
    binary = _load_binary(args.binary)
    for asm in disassemble_binary(binary):
        if args.function and asm.name != args.function:
            continue
        print(asm.render())
        print()
    return 0


def _cmd_decompile(args) -> int:
    from repro.lang.printer import _stmt_lines

    binary = _load_binary(args.binary)
    for fn in decompile_binary(binary, skip_errors=True):
        if args.function and fn.name != args.function:
            continue
        print(f"// {fn.name} ({fn.arch}, {fn.n_instructions} instructions, "
              f"{fn.ast_size()} AST nodes)")
        print("\n".join(_stmt_lines(fn.ast, 0)))
        print()
    return 0


def _cmd_train(args) -> int:
    from repro.evalsuite.datasets import build_buildroot_dataset

    dataset = build_buildroot_dataset(n_packages=args.packages, seed=args.seed)
    pairs = to_tree_pairs(
        build_cross_arch_pairs(dataset.functions, args.pairs, seed=args.seed)
    )
    train, dev = split_pairs(pairs, 0.8, seed=args.seed)
    print(f"{len(train)} training pairs, {len(dev)} dev pairs")
    model = Asteria(AsteriaConfig(embedding_dim=args.dim))
    trainer = Trainer(
        model.siamese,
        TrainConfig(epochs=args.epochs, batch_size=args.batch_size),
    )
    history = trainer.train(train, dev)
    print(f"best dev AUC: {history.best_auc:.4f} "
          f"(epoch {history.best_epoch})")
    model.save(args.output)
    print(f"saved model to {args.output}")
    return 0


def _cmd_compare(args) -> int:
    model = Asteria.load(args.model)
    binary1 = _load_binary(args.binary1)
    binary2 = _load_binary(args.binary2)
    fn1 = decompile_function(binary1, binary1.function_named(args.function1))
    fn2 = decompile_function(binary2, binary2.function_named(args.function2))
    e1, e2 = model.encode_function(fn1), model.encode_function(fn2)
    print(f"M (AST similarity):        {model.similarity(e1, e2, calibrate=False):.4f}")
    print(f"F (calibrated similarity): {model.similarity(e1, e2):.4f}")
    return 0


def _make_cache(cache_dir):
    from repro.pipeline import ArtifactCache

    return ArtifactCache(cache_dir) if cache_dir else ArtifactCache.in_memory()


def _cmd_search(args) -> int:
    from repro.evalsuite.vulnsearch import (
        VulnerabilitySearch,
        build_firmware_dataset,
    )

    model = Asteria.load(args.model)
    dataset = build_firmware_dataset(n_images=args.images, seed=args.seed)
    search = VulnerabilitySearch(
        model, threshold=args.threshold,
        cache=_make_cache(args.cache_dir), jobs=args.jobs,
    )
    report, _candidates = search.search(dataset, top_k=args.top_k)
    print(f"unpacked {report.n_unpacked}/{report.n_images} images, "
          f"indexed {report.n_functions} functions")
    for row in report.rows:
        print(f"{row.entry.cve_id:<15} {row.entry.software:<9} "
              f"confirmed={row.n_confirmed} "
              f"models={','.join(row.models) or '-'}")
    print(f"total confirmed: {report.total_confirmed()}")
    return 0


def _cmd_pipeline_run(args) -> int:
    from repro.evalsuite.vulnsearch import build_firmware_dataset
    from repro.index.store import EmbeddingStore, StoreError
    from repro.pipeline import CorpusPipeline

    model = Asteria.load(args.model)
    dataset = build_firmware_dataset(n_images=args.images, seed=args.seed)
    pipeline = CorpusPipeline(
        model, jobs=args.jobs, cache=_make_cache(args.cache_dir),
        encode_batch_size=args.batch_size,
    )
    sink = None
    if args.output:
        try:
            sink = EmbeddingStore.create(
                args.output, dim=model.config.hidden_dim,
                shard_size=args.shard_size,
            )
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    result = pipeline.run_images(dataset.images, sink=sink)
    print(result.stats.summary())
    if sink is not None:
        print(f"wrote {sink.n_shards} shard(s) to {args.output}")
    return 0


def _cmd_index_build(args) -> int:
    from repro.evalsuite.vulnsearch import (
        VulnerabilitySearch,
        build_firmware_dataset,
    )

    from repro.index.store import StoreError

    model = Asteria.load(args.model)
    dataset = build_firmware_dataset(n_images=args.images, seed=args.seed)
    search = VulnerabilitySearch(
        model, cache=_make_cache(args.cache_dir), jobs=args.jobs
    )
    try:
        service = search.build_index(
            dataset, root=args.output, shard_size=args.shard_size,
            encode_batch_size=args.batch_size,
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    store = service.store
    print(f"ingested {len(store)} functions from "
          f"{dataset.n_unpackable()}/{len(dataset.images)} unpackable images")
    print(f"wrote {store.n_shards} shard(s) to {args.output}")
    return 0


def _cmd_index_search(args) -> int:
    from repro.evalsuite.vulnsearch import VulnerabilitySearch
    from repro.index.search import SearchService
    from repro.index.store import EmbeddingStore, StoreError

    model = Asteria.load(args.model)
    try:
        store = EmbeddingStore.open(args.index)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    options = {}
    if args.backend == "lsh":
        options = {"seed": args.seed}
    service = SearchService(model, store, backend=args.backend, **options)
    search = VulnerabilitySearch(model)
    library = search.encode_library()
    wanted = set(args.cve) if args.cve else None
    if wanted:
        unknown = wanted - set(library)
        if unknown:
            print(f"error: unknown CVE id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 1
    for cve_id, (entry, encoding) in sorted(library.items()):
        if wanted is not None and cve_id not in wanted:
            continue
        hits = service.query(
            encoding, top_k=args.top_k, threshold=args.threshold
        )
        print(f"{cve_id} ({entry.software} {entry.function_name}), "
              f"top {len(hits)} of {len(store)} indexed functions:")
        for rank, hit in enumerate(hits, start=1):
            print(f"  {rank:>2}. score={hit.score:.4f} {hit.image_id} "
                  f"{hit.binary_name} {hit.name} [{hit.arch}]")
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _add_pipeline_options(parser) -> None:
    """The offline-pipeline knobs shared by corpus-encoding commands."""
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for the decompile/"
                             "preprocess stages (results are identical "
                             "to --jobs 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent artifact cache: warm re-runs "
                             "skip decompile + encode")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Asteria reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a source package")
    p.add_argument("--name", default="pkg0")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("compile", help="cross-compile a generated package")
    p.add_argument("--name", default="pkg0")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arch", nargs="+", default=["x86", "x64", "arm", "ppc"],
                   choices=["x86", "x64", "arm", "ppc"])
    p.add_argument("--strip", action="store_true",
                   help="remove the symbol table")
    p.add_argument("--output", default=".")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("disasm", help="disassemble an RBIN binary")
    p.add_argument("binary")
    p.add_argument("--function", help="only this function")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("decompile", help="decompile an RBIN binary")
    p.add_argument("binary")
    p.add_argument("--function", help="only this function")
    p.set_defaults(func=_cmd_decompile)

    p = sub.add_parser("train", help="train an Asteria model")
    p.add_argument("--packages", type=int, default=4)
    p.add_argument("--pairs", type=int, default=15)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--dim", type=int, default=16)
    p.add_argument("--batch-size", type=_positive_int, default=1,
                   help="pairs per optimiser step (1 = the paper's "
                        "per-pair setting; >1 uses the level-batched "
                        "Tree-LSTM engine)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="asteria.npz")
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("compare", help="compare two binary functions")
    p.add_argument("--model", required=True)
    p.add_argument("binary1")
    p.add_argument("function1")
    p.add_argument("binary2")
    p.add_argument("function2")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("search", help="firmware vulnerability search")
    p.add_argument("--model", required=True)
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threshold", type=float, default=0.8)
    p.add_argument("--top-k", type=int, default=None,
                   help="cap candidates per CVE (default: all above "
                        "threshold)")
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "pipeline", help="staged offline corpus pipeline"
    )
    pipeline_sub = p.add_subparsers(dest="pipeline_command", required=True)

    p = pipeline_sub.add_parser(
        "run",
        help="run unpack -> decompile -> preprocess -> encode -> index "
             "over a firmware corpus, reporting per-stage times and "
             "cache hits",
    )
    p.add_argument("--model", required=True)
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--batch-size", type=_positive_int, default=64,
                   help="trees per level-batched encode pass")
    p.add_argument("--output", default=None,
                   help="also index the encodings into a new embedding "
                        "store at this directory")
    p.add_argument("--shard-size", type=int, default=1024)
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_pipeline_run)

    p = sub.add_parser("index", help="persistent embedding index")
    index_sub = p.add_subparsers(dest="index_command", required=True)

    p = index_sub.add_parser(
        "build", help="encode a firmware corpus into a persistent index"
    )
    p.add_argument("--model", required=True)
    p.add_argument("--output", required=True,
                   help="directory for the new index")
    p.add_argument("--images", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shard-size", type=int, default=1024)
    p.add_argument("--batch-size", type=_positive_int, default=64,
                   help="trees per level-batched encode pass during ingest")
    _add_pipeline_options(p)
    p.set_defaults(func=_cmd_index_build)

    p = index_sub.add_parser(
        "search", help="top-k CVE queries against a built index"
    )
    p.add_argument("--model", required=True)
    p.add_argument("--index", required=True,
                   help="directory of a built index")
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--backend", choices=["exact", "lsh"], default="exact")
    p.add_argument("--threshold", type=float, default=None,
                   help="drop hits scoring below this (default: keep "
                        "the full top-k)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cve", nargs="*", default=None,
                   help="restrict to these CVE ids (default: whole library)")
    p.set_defaults(func=_cmd_index_search)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
