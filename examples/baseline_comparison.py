"""Comparative evaluation: Asteria vs Asteria-WOC vs Gemini vs Diaphora.

Regenerates a miniature Figure 6: trains all learned models on a buildroot
corpus, evaluates on a held-out OpenSSL-style corpus, and prints AUCs.
Expected ordering (paper: 0.985 / 0.969 / 0.917 / 0.539):

    Asteria >= Asteria-WOC > Gemini >> Diaphora

Run:  python examples/baseline_comparison.py
"""

from repro import Asteria, AsteriaConfig, TrainConfig, Trainer
from repro.baselines.diaphora import DiaphoraMatcher
from repro.baselines.gemini.model import Gemini, GeminiConfig, GeminiPair
from repro.core import build_cross_arch_pairs, to_tree_pairs
from repro.core.pairs import split_pairs
from repro.evalsuite.datasets import build_buildroot_dataset, build_openssl_dataset
from repro.evalsuite.metrics import roc_auc, tpr_at_fpr


def main():
    print("building corpora...")
    buildroot = build_buildroot_dataset(n_packages=5, seed=7)
    openssl = build_openssl_dataset(n_functions=24, seed=9)

    print("training Asteria...")
    pairs = to_tree_pairs(build_cross_arch_pairs(buildroot.functions, 18, seed=1))
    train, dev = split_pairs(pairs, 0.85, seed=2)
    asteria = Asteria(AsteriaConfig())
    Trainer(asteria.siamese, TrainConfig(epochs=2, lr=0.05)).train(train, dev)

    print("training Gemini...")
    labeled = build_cross_arch_pairs(buildroot.functions, 18, seed=4)
    gemini_pairs = [
        GeminiPair(buildroot.acfg_for(p.first), buildroot.acfg_for(p.second),
                   p.label)
        for p in labeled
    ]
    cut = int(len(gemini_pairs) * 0.85)
    gemini = Gemini(GeminiConfig())
    gemini.train(gemini_pairs[:cut], gemini_pairs[cut:], epochs=3, lr=0.005)

    print("evaluating on the held-out corpus...")
    eval_pairs = build_cross_arch_pairs(openssl.functions, 15, seed=3)
    labels = [1 if p.label > 0 else 0 for p in eval_pairs]

    asteria_enc = {}

    def encode(fn):
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in asteria_enc:
            asteria_enc[key] = asteria.encode_function(fn)
        return asteria_enc[key]

    results = {
        "Asteria": [
            asteria.similarity(encode(p.first), encode(p.second))
            for p in eval_pairs
        ],
        "Asteria-WOC": [
            asteria.similarity(encode(p.first), encode(p.second),
                               calibrate=False)
            for p in eval_pairs
        ],
        "Gemini": [
            gemini.similarity(openssl.acfg_for(p.first),
                              openssl.acfg_for(p.second))
            for p in eval_pairs
        ],
        "Diaphora": [
            DiaphoraMatcher().similarity(p.first.ast, p.second.ast)
            for p in eval_pairs
        ],
    }

    print(f"\n{'approach':<14} {'AUC':>7} {'TPR@5%FPR':>10}   (paper AUC)")
    paper = {"Asteria": 0.985, "Asteria-WOC": 0.969,
             "Gemini": 0.917, "Diaphora": 0.539}
    for name, scores in results.items():
        auc = roc_auc(labels, scores)
        tpr = tpr_at_fpr(labels, scores, 0.05)
        print(f"{name:<14} {auc:>7.3f} {tpr:>10.3f}   ({paper[name]:.3f})")


if __name__ == "__main__":
    main()
