"""A tour of the binary-analysis substrate.

Reproduces the paper's Figures 1 and 2 end to end on the running system:
compiles the ``histsizesetfn`` example for x86 and ARM, shows the assembly
(4 basic blocks on x86 vs 1 predicated block on ARM), and prints the
decompiled ASTs whose comparison nodes differ (``le`` vs ``ge``) exactly as
the paper illustrates.

Run:  python examples/decompiler_tour.py
"""

from repro.compiler.cfg import build_cfg
from repro.compiler.pipeline import compile_function
from repro.core.preprocess import digitize
from repro.decompiler import decompile_binary
from repro.disasm import disassemble_binary
from repro.lang import nodes as N
from repro.lang.nodes import FunctionDef, Ops
from repro.lang.printer import to_source, _stmt_lines

# The paper's running example (zsh's histsizesetfn):
#   if (v < 1) histsiz = 1; else histsiz = v;  return histsiz;
HISTSIZESETFN = FunctionDef(
    "histsizesetfn", ("a0",), ("v0",),
    N.block(
        N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
              N.block(N.asg(N.var("v0"), N.num(1))),
              N.block(N.asg(N.var("v0"), N.var("a0")))),
        N.ret(N.var("v0")),
    ),
)


def show_tree(tree, indent=0):
    label = tree.op if tree.value is None else f"{tree.op}={tree.value}"
    print("  " * indent + label)
    for child in tree.children:
        show_tree(child, indent + 1)


def main():
    print("source (paper Figure 1):")
    print(to_source(HISTSIZESETFN))

    for arch in ("x86", "arm"):
        print(f"\n==== {arch} " + "=" * 40)
        binary = compile_function(HISTSIZESETFN, arch)
        asm = disassemble_binary(binary)[0]
        cfg = build_cfg(asm)
        print(f"assembly ({cfg.block_count} basic block(s), "
              f"paper Figure 2):")
        print(asm.render())

        decompiled = decompile_binary(binary)[0]
        print("\ndecompiled pseudocode:")
        print("\n".join(_stmt_lines(decompiled.ast, 1)))
        comparison = next(
            n for n in decompiled.ast.walk()
            if n.op in ("eq", "ne", "gt", "lt", "ge", "le")
        )
        print(f"\ncomparison node in the AST: {comparison.op!r}")

    print("\npreprocessing (digitise + left-child right-sibling):")
    binary = compile_function(HISTSIZESETFN, "x86")
    decompiled = decompile_binary(binary)[0]
    tree = digitize(decompiled.ast)
    print(f"AST size {decompiled.ast_size()} -> binary tree size {tree.size()}")
    print("AST (op tree):")
    show_tree(decompiled.ast)


if __name__ == "__main__":
    main()
