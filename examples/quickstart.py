"""Quickstart: train Asteria and compare binary functions across architectures.

Walks the full paper pipeline at miniature scale:

1. generate a source corpus and cross-compile it (x86/x64/ARM/PPC);
2. decompile every binary back to ASTs;
3. build labelled cross-architecture function pairs;
4. train the Tree-LSTM Siamese model;
5. score homologous and non-homologous pairs.

Run:  python examples/quickstart.py
"""

from repro import Asteria, AsteriaConfig, TrainConfig, Trainer
from repro.core import build_cross_arch_pairs, to_tree_pairs
from repro.core.pairs import split_pairs
from repro.evalsuite.datasets import build_buildroot_dataset
from repro.evalsuite.metrics import roc_auc, youden_threshold


def main():
    print("1) building corpus (generate -> cross-compile -> decompile)...")
    dataset = build_buildroot_dataset(n_packages=4, seed=7)
    for stat in dataset.stats():
        print(f"   {stat.arch}: {stat.n_binaries} binaries, "
              f"{stat.n_functions} functions")

    print("2) constructing labelled cross-architecture pairs...")
    pairs = to_tree_pairs(build_cross_arch_pairs(dataset.functions, 15, seed=1))
    train, test = split_pairs(pairs, 0.8, seed=2)
    print(f"   {len(train)} training pairs, {len(test)} test pairs")

    print("3) training the Tree-LSTM Siamese model (paper defaults)...")
    model = Asteria(AsteriaConfig())
    trainer = Trainer(model.siamese, TrainConfig(epochs=2, lr=0.05))
    history = trainer.train(train, test)
    for epoch in history.epochs:
        print(f"   epoch {epoch.epoch}: loss={epoch.mean_loss:.4f} "
              f"auc={epoch.auc:.4f} ({epoch.seconds:.1f}s)")

    print("4) scoring pairs (offline encode, online compare)...")
    scores, labels = [], []
    for pair in test:
        e1 = model.encode_function(pair.first)
        e2 = model.encode_function(pair.second)
        scores.append(model.similarity(e1, e2))
        labels.append(1 if pair.label > 0 else 0)
    auc = roc_auc(labels, scores)
    threshold, j = youden_threshold(labels, scores)
    print(f"   test AUC = {auc:.4f}; Youden threshold = {threshold:.3f} "
          f"(J = {j:.3f})")

    sample = test[0]
    e1, e2 = model.encode_function(sample.first), model.encode_function(sample.second)
    kind = "homologous" if sample.label > 0 else "non-homologous"
    print(f"   example: {sample.first.name}({sample.first.arch}) vs "
          f"{sample.second.name}({sample.second.arch}) [{kind}] -> "
          f"F = {model.similarity(e1, e2):.4f}")

    print("5) saving the model to /tmp/asteria_quickstart.npz")
    model.save("/tmp/asteria_quickstart.npz")
    restored = Asteria.load("/tmp/asteria_quickstart.npz")
    print(f"   reloaded model reproduces the score: "
          f"{restored.similarity(e1, e2):.4f}")


if __name__ == "__main__":
    main()
