"""Quickstart: the whole paper workflow through one `AsteriaEngine`.

Walks the full pipeline at miniature scale, entirely over the unified
facade (`repro.api`):

1. train the Tree-LSTM Siamese model (`engine.train`);
2. ingest a cross-compiled corpus into the embedding index
   (`engine.ingest`);
3. run top-k similarity queries (`engine.query`);
4. compare one function across architectures (`engine.compare`);
5. save the checkpoint and reload it through `EngineConfig.model_path`.

Run:  python examples/quickstart.py
"""

from repro.api import (
    AsteriaEngine,
    CompareRequest,
    EncodeRequest,
    EngineConfig,
    IngestRequest,
    QueryRequest,
    TrainRequest,
)
from repro.evalsuite.datasets import build_buildroot_dataset


def main():
    engine = AsteriaEngine(EngineConfig())

    print("1) training the Tree-LSTM Siamese model (paper defaults)...")
    result = engine.train(TrainRequest(
        packages=4, pairs=15, epochs=2, seed=7,
        output_path="/tmp/asteria_quickstart.npz",
    ))
    print(f"   {result.n_train} training pairs, {result.n_dev} dev pairs")
    for epoch in result.history.epochs:
        print(f"   epoch {epoch.epoch}: loss={epoch.mean_loss:.4f} "
              f"auc={epoch.auc:.4f} ({epoch.seconds:.1f}s)")

    print("2) ingesting a cross-compiled corpus into the embedding index...")
    dataset = build_buildroot_dataset(n_packages=4, seed=7)
    binaries = [b for arch in sorted(dataset.binaries)
                for b in dataset.binaries[arch]]
    ingest = engine.ingest(IngestRequest(binaries=binaries))
    print(f"   {ingest.n_rows_total} functions indexed from "
          f"{ingest.n_binaries} binaries")

    print("3) querying: top-5 most similar corpus functions...")
    query_binary = dataset.binaries["x86"][0]
    fn = engine.encode(EncodeRequest(binary=query_binary)).encodings[0]
    result = engine.query(QueryRequest(
        binary=query_binary, function=fn.name, top_k=5,
    ))
    print(f"   query {result.query} over {result.n_rows} rows:")
    for rank, hit in enumerate(result.hits, start=1):
        print(f"   {rank}. score={hit.score:.4f} "
              f"{hit.binary_name} {hit.name} [{hit.arch}]")

    print("4) comparing the same function across architectures...")
    cmp = engine.compare(CompareRequest(
        binary1=dataset.binaries["x86"][0], function1=fn.name,
        binary2=dataset.binaries["arm"][0], function2=fn.name,
    ))
    print(f"   M (AST similarity)        = {cmp.ast_similarity:.4f}")
    print(f"   F (calibrated similarity) = {cmp.similarity:.4f}")

    print("5) reloading the checkpoint through EngineConfig...")
    restored = AsteriaEngine(
        EngineConfig(model_path="/tmp/asteria_quickstart.npz")
    )
    again = restored.compare(CompareRequest(
        binary1=dataset.binaries["x86"][0], function1=fn.name,
        binary2=dataset.binaries["arm"][0], function2=fn.name,
    ))
    print(f"   reloaded model reproduces the score: {again.similarity:.4f}")

    stats = engine.stats()
    print(f"engine stats: {stats.n_queries} queries, "
          f"{stats.index_rows} indexed rows, "
          f"cache {stats.cache_hits} hits / {stats.cache_misses} misses")


if __name__ == "__main__":
    main()
