"""Shard-parallel serving: pooled sweep throughput + hot-swap liveness.

The serving subsystem's claim is twofold:

* **throughput** -- with ``serve_workers=N``, concurrent queries sweep
  disjoint shard ranges in N worker processes *outside* the engine
  lock, while the single-process path serializes every sweep behind it.
  An engine-level 16-client storm of pre-encoded queries measures both
  engines over the same 8-scoring-block corpus and asserts the pooled
  engine clears ``PARALLEL_SERVE_MIN_SPEEDUP``.  The default floor is
  2x *when the box has >= 4 CPUs*; on smaller runners process
  parallelism cannot beat physics, so the floor auto-relaxes to a
  no-pathological-overhead check (recorded in the emitted JSON).
* **liveness across a hot swap** -- an HTTP client storm runs while an
  ingest builds and atomically publishes a new index generation.  Zero
  non-2xx responses are tolerated, every response must name exactly one
  of the two generations, and the swap counter must read exactly 1.

Correctness is cross-checked first: every pooled merged top-k must be
bit-for-bit identical (rows *and* scores) to the single-process
reference.  An HTTP queries/second ladder at 16 -> 64 -> 256 clients is
also reported, un-asserted (socket overhead is noisy on shared CI
runners).
"""

import base64
import json
import os
import threading
import time
import urllib.request

import numpy as np

from repro.api import (
    AsteriaEngine,
    EncodeRequest,
    EngineConfig,
    EngineServer,
    QueryRequest,
)
from repro.compiler.pipeline import compile_package
from repro.core.model import FunctionEncoding
from repro.index.ann import SCORE_BLOCK_ROWS, BruteForceIndex
from repro.index.store import EmbeddingStore
from repro.lang.generator import ProgramGenerator

from benchmarks.conftest import emit_bench_json, write_result

N_CPUS = len(os.sched_getaffinity(0))
N_WORKERS = 4
#: 8 scoring blocks -> 2 blocks per worker at 4 workers.  The pool's
#: parallelism granularity is one scoring block (ranges must align to
#: the global sweep's GEMM blocks for the bit-for-bit merge), so the
#: corpus must span >= N_WORKERS blocks to use every worker.
N_ROWS = int(os.environ.get("PARALLEL_SERVE_ROWS", str(8 * SCORE_BLOCK_ROWS)))
N_CLIENTS = 16
QUERIES_PER_CLIENT = 6
HTTP_LADDER = (16, 64, 256)
HTTP_TOTAL_PER_RUNG = 256
MIN_SPEEDUP = float(os.environ.get(
    "PARALLEL_SERVE_MIN_SPEEDUP",
    # 4 sweep processes can only beat one on a multi-core box; on a
    # 1-2 core runner the pooled path pays IPC for no extra silicon,
    # so only assert it is not pathologically slower
    "2.0" if N_CPUS >= 4 else "0.3",
))
TOP_K = 10


def _fill_store(root, model, n_rows):
    dim = model.config.hidden_dim
    store = EmbeddingStore.create(root, dim=dim, shard_size=SCORE_BLOCK_ROWS)
    rng = np.random.default_rng(42)
    vectors = rng.normal(size=(n_rows, dim))
    for i in range(n_rows):
        store.add(FunctionEncoding(
            name=f"fn{i}", arch="x86", binary_name=f"lib{i % 31}",
            vector=vectors[i], callee_count=i % 9, ast_size=10 + i % 7,
        ))
    store.flush()
    return store, vectors


def _query_encodings(vectors, n):
    step = max(1, len(vectors) // (n + 1))
    return [
        FunctionEncoding(
            name=f"q{i}", arch="x86", binary_name="query",
            vector=vectors[(i + 1) * step], callee_count=i % 9,
            ast_size=12,
        )
        for i in range(n)
    ]


def _storm(engine, requests, n_clients, per_client):
    """Barrier-started client threads issuing round-robin queries."""
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def client(i):
        barrier.wait()
        try:
            for j in range(per_client):
                engine.query(requests[(i + j) % len(requests)])
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return (n_clients * per_client) / elapsed


def _http_post(url, payload_bytes, timeout=300):
    request = urllib.request.Request(
        url, data=payload_bytes,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _http_storm(server, payloads, n_clients, total_requests):
    per_client = max(1, total_requests // n_clients)
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def client(i):
        barrier.wait()
        try:
            for j in range(per_client):
                status, _ = _http_post(
                    server.url + "/v1/query",
                    payloads[(i + j) % len(payloads)],
                )
                assert status == 200
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:3]
    return (n_clients * per_client) / elapsed


def test_parallel_serve(trained_asteria, tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel-serve") / "idx"
    store, vectors = _fill_store(root, trained_asteria, N_ROWS)
    encodings = _query_encodings(vectors, 8)
    requests = [
        QueryRequest(encoding=e, top_k=TOP_K, threshold=None)
        for e in encodings
    ]

    single = AsteriaEngine(
        EngineConfig(index_root=str(root), serve_workers=1,
                     max_inflight=512),
        model=trained_asteria,
    )
    pooled = AsteriaEngine(
        EngineConfig(index_root=str(root), serve_workers=N_WORKERS,
                     max_inflight=512),
        model=trained_asteria,
    )

    server = None
    server_thread = None
    try:
        # correctness first: pooled merged top-k bit-for-bit (rows AND
        # scores) against the single-process reference sweep.  The
        # reference is computed one query at a time because the engine
        # path sweeps each /v1/query alone -- GEMM accumulation depends
        # on the query-batch width too, so only equal batch
        # compositions are comparable down to the last float bit.
        reference_index = BruteForceIndex(
            trained_asteria, store.vectors().snapshot(),
            store.callee_counts(), calibrate=True,
        )
        for request in requests:
            expected = reference_index.top_k_batch(
                [request.encoding], k=TOP_K
            )[0]
            result = pooled.query(request)
            assert result.generation == "."
            assert [(h.row, h.score) for h in result.hits] \
                == [(n.row, n.score) for n in expected], (
                f"pooled merge diverged from single-process for "
                f"{request.encoding.name}"
            )

        # throughput: same storm against both engines; single-process
        # first so the pooled engine cannot profit from anything it warms
        single.query(requests[0])  # warm the in-process index build
        single_qps = max(
            _storm(single, requests, N_CLIENTS, QUERIES_PER_CLIENT)
            for _round in range(2)
        )
        pooled_qps = max(
            _storm(pooled, requests, N_CLIENTS, QUERIES_PER_CLIENT)
            for _round in range(2)
        )
        speedup = pooled_qps / single_qps

        # HTTP ladder + hot-swap liveness against the pooled engine.
        # HTTP queries go through the real binary -> encode -> sweep path.
        package = ProgramGenerator(seed=77).generate_package("parallelq")
        binary = compile_package(package, "x86")
        fn_names = [
            e.name for e in
            pooled.encode(EncodeRequest(binary=binary)).encodings[:4]
        ]
        binary_b64 = base64.b64encode(binary.to_bytes()).decode("ascii")
        payloads = [
            json.dumps({
                "binary_b64": binary_b64, "function": name,
                "top_k": TOP_K,
            }).encode("utf-8")
            for name in fn_names
        ]

        server = EngineServer(("127.0.0.1", 0), pooled)
        server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        server_thread.start()
        http_qps = {}
        for n_clients in HTTP_LADDER:
            http_qps[n_clients] = _http_storm(
                server, payloads, n_clients, HTTP_TOTAL_PER_RUNG
            )

        # hot swap under load: a client storm runs while an ingest
        # builds and atomically publishes a new generation
        stop = threading.Event()
        statuses = []
        generations_seen = set()
        storm_errors = []

        def swap_client(i):
            j = 0
            while not stop.is_set():
                try:
                    status, body = _http_post(
                        server.url + "/v1/query",
                        payloads[(i + j) % len(payloads)],
                    )
                    statuses.append(status)
                    generations_seen.add(body["generation"])
                except Exception as exc:  # noqa: BLE001
                    storm_errors.append(repr(exc))
                    return
                j += 1

        clients = [
            threading.Thread(target=swap_client, args=(i,), daemon=True)
            for i in range(8)
        ]
        for t in clients:
            t.start()
        while len(statuses) < 24:  # storm established on old generation
            time.sleep(0.05)
        swap_status, swap_body = _http_post(
            server.url + "/v1/ingest",
            json.dumps({"binary_b64": binary_b64}).encode("utf-8"),
        )
        assert swap_status == 200 and swap_body["n_rows_total"] > N_ROWS
        after_swap = len(statuses)
        while len(statuses) < after_swap + 24:  # and on the new one
            time.sleep(0.05)
        stop.set()
        for t in clients:
            t.join(timeout=60)
        with urllib.request.urlopen(
            server.url + "/healthz", timeout=60
        ) as response:
            health_status = response.status
            health = json.loads(response.read())
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if server_thread is not None:
            server_thread.join(timeout=10)
        single.close()
        pooled.close()

    n_swap_queries = len(statuses)
    n_failed = sum(1 for s in statuses if s != 200)
    swaps_total = pooled.obs.value("repro_index_swaps_total")

    lines = [
        f"corpus: {N_ROWS} rows in {store.n_shards} shards "
        f"({SCORE_BLOCK_ROWS}-row scoring blocks); {N_CPUS} CPU(s)",
        f"storm: {N_CLIENTS} clients x {QUERIES_PER_CLIENT} pre-encoded "
        f"queries each",
        "",
        f"{'engine':<28} {'queries/s':>10}",
        f"{'single-process (lock)':<28} {single_qps:>10.1f}",
        f"{f'pooled ({N_WORKERS} workers)':<28} {pooled_qps:>10.1f}",
        "",
        f"speedup: {speedup:.2f}x (required >= {MIN_SPEEDUP:g}x"
        + ("" if N_CPUS >= 4 else f"; floor relaxed: {N_CPUS} CPU(s)")
        + ")",
        "",
        "end-to-end HTTP ladder (reported only):",
    ]
    lines += [
        f"  {n_clients:>4} clients: {qps:>8.1f} queries/s"
        for n_clients, qps in http_qps.items()
    ]
    lines += [
        "",
        f"hot swap under load: {n_swap_queries} queries across the "
        f"flip, {n_failed} failed, generations seen: "
        f"{sorted(generations_seen)}, swaps: {swaps_total:g}",
        f"active generation after swap: {health['active_generation']}, "
        f"pool workers alive: {health['pool_workers_alive']}",
    ]
    # write diagnostics before any assert so the CI artifact survives
    # every failure class, not just the throughput one
    write_result("parallel_serve", "\n".join(lines))
    emit_bench_json(
        "parallel_serve",
        {
            "n_rows": N_ROWS,
            "n_cpus": N_CPUS,
            "n_workers": N_WORKERS,
            "n_clients": N_CLIENTS,
            "single_qps": single_qps,
            "pooled_qps": pooled_qps,
            "speedup": speedup,
            "http_qps": {str(k): v for k, v in http_qps.items()},
            "swap_queries": n_swap_queries,
            "swap_failed": n_failed,
            "swaps_total": swaps_total,
            "generations_seen": sorted(generations_seen),
        },
        floors={"min_speedup": MIN_SPEEDUP, "max_swap_failures": 0},
    )

    assert not storm_errors, storm_errors[:3]
    assert n_failed == 0, f"{n_failed} failed queries across the swap"
    assert generations_seen <= {".", "generations/gen-00001"}, (
        generations_seen
    )
    assert "generations/gen-00001" in generations_seen, (
        "storm never observed the new generation"
    )
    assert swaps_total == 1
    assert health_status == 200
    assert health["active_generation"] == 1
    assert health["pool_workers_alive"] == N_WORKERS
    assert speedup >= MIN_SPEEDUP, (
        f"pooled serving {speedup:.2f}x vs single-process "
        f"(required >= {MIN_SPEEDUP:g}x on {N_CPUS} CPU(s))"
    )
