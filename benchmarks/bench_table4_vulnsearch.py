"""Table IV: vulnerability search results over the firmware corpus.

Regenerates the CVE-by-CVE confirmed-vulnerability table: 7 vulnerable
functions searched against every function of every unpackable firmware
image, thresholded at the Youden-derived cutoff, confirmed via criteria
A/B.  Expected shape: implanted vulnerable functions are recovered with no
false confirmations, OpenSSL CVEs dominate the counts (they appear in the
most images), and affected vendor/model lists are reported per CVE.
"""

from repro.evalsuite.vulnsearch import (
    VulnerabilitySearch,
    build_firmware_dataset,
)

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_table4_vulnerability_search(benchmark, trained_asteria):
    dataset = build_firmware_dataset(
        n_images=scaled(16), seed=5, vulnerable_fraction=0.55
    )
    search = VulnerabilitySearch(trained_asteria, threshold=0.8)
    index = search.index_firmware(dataset)
    report, candidates = search.search(dataset, firmware_index=index)

    lines = [
        f"images: {report.n_images} ({report.n_unpacked} unpackable), "
        f"functions indexed: {report.n_functions}, "
        f"candidates: {report.n_candidates}",
        "",
        f"{'CVE':<15} {'software':<9} {'function':<28} "
        f"{'cand':>5} {'conf':>5}  vendors/models",
    ]
    for row in report.rows:
        vendors = ",".join(row.vendors) or "-"
        models = ",".join(row.models[:4]) or "-"
        lines.append(
            f"{row.entry.cve_id:<15} {row.entry.software:<9} "
            f"{row.entry.function_name:<28} {row.n_candidates:>5} "
            f"{row.n_confirmed:>5}  {vendors} / {models}"
        )
    lines.append("")
    lines.append(f"total confirmed vulnerable functions: "
                 f"{report.total_confirmed()}")
    write_result("table4_vulnsearch", "\n".join(lines))
    emit_bench_json(
        "table4_vulnsearch",
        {
            "n_images": report.n_images,
            "n_unpacked": report.n_unpacked,
            "n_functions": report.n_functions,
            "n_candidates": report.n_candidates,
            "total_confirmed": report.total_confirmed(),
            "confirmed_by_cve": {
                row.entry.cve_id: row.n_confirmed for row in report.rows
            },
        },
    )

    # Shape checks: vulnerabilities are found, and every confirmation is a
    # true implant (no false confirms).
    unpackable = {
        image.identifier for image in dataset.images if not image.unknown_format
    }
    implanted = sum(
        len(info.vuln_function_addresses)
        for (image_id, _binary), info in dataset.provenance.items()
        if image_id in unpackable
    )
    if implanted:
        assert report.total_confirmed() > 0
    for candidate in candidates:
        if candidate.confirmed:
            info = dataset.provenance[
                (candidate.image.identifier, candidate.binary_name)
            ]
            assert info.vulnerable

    library = search.encode_library()
    _entry, vuln_encoding = next(iter(library.values()))
    sample = index[: scaled(50)]

    def score_sweep():
        return [
            trained_asteria.similarity(vuln_encoding, encoding)
            for _image, _name, encoding in sample
        ]

    benchmark(score_sweep)
