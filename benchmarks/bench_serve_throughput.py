"""Serving throughput: micro-batched concurrent queries vs batch-size 1.

The serving layer's claim is that under concurrency, coalescing query
encodes into shared level-batched GEMM calls beats serial per-request
encoding.  This bench runs a 16-client query storm against two engines
over the *same* embedding store and artifact cache:

* **serial**  -- ``micro_batch_size=1`` (every request encodes alone,
  the pre-facade behavior);
* **batched** -- ``micro_batch_size=64`` with a 2 ms accumulation
  window (the ``repro-cli serve`` default).

and asserts the batched engine clears ``SERVE_BENCH_MIN_SPEEDUP``
in queries/second (default 2x on hosts with >= 4 CPUs; 1.3x below
that -- the adaptive-GEMM encoder made the serial baseline fast
enough that a single core no longer leaves 2x of batching headroom).  Results are cross-checked: every
concurrent batched result must be bit-for-bit identical to the serial
reference.  An end-to-end HTTP round (real sockets, JSON bodies) is
also measured and reported, un-asserted -- socket overhead is noisy on
shared CI runners.

``SERVE_BENCH_MIN_SPEEDUP`` relaxes the floor for reduced-scale CI runs.
"""

import base64
import json
import os
import threading
import time
import urllib.request

from repro.api import (
    AsteriaEngine,
    EngineConfig,
    EngineServer,
    EncodeRequest,
    IngestRequest,
    QueryRequest,
)
from repro.compiler.pipeline import compile_package
from repro.lang.generator import ProgramGenerator

from benchmarks.conftest import emit_bench_json, scaled, write_result

N_CLIENTS = 16
QUERIES_PER_CLIENT = 8
# Micro-batching's win comes from wider GEMMs *and* from overlapping
# clients across cores; on a single-CPU host the second term is gone
# and the faster post-adaptive-blocking serial encoder leaves ~1.7x
# of headroom, so the floor steps down with the core count.
N_CPUS = len(os.sched_getaffinity(0))
MIN_SPEEDUP = float(os.environ.get(
    "SERVE_BENCH_MIN_SPEEDUP", "2.0" if N_CPUS >= 4 else "1.3"
))
TOP_K = 10


def _query_requests(engine, n_binaries=4, per_binary=8):
    """Distinct (binary, function) query specs from compiled packages."""
    requests = []
    for seed in range(n_binaries):
        package = ProgramGenerator(seed=1000 + seed).generate_package(
            f"client{seed}"
        )
        binary = compile_package(package, "x86")
        encodings = engine.encode(EncodeRequest(binary=binary)).encodings
        requests.extend(
            QueryRequest(binary=binary, function=encoding.name, top_k=TOP_K)
            for encoding in encodings[:per_binary]
        )
    assert requests, "no encodable query functions"
    return requests


def _storm(engine, requests, collect=None):
    """16 barrier-started clients issuing round-robin queries; returns qps."""
    barrier = threading.Barrier(N_CLIENTS + 1)
    errors = []

    def client(i):
        barrier.wait()
        try:
            for j in range(QUERIES_PER_CLIENT):
                request = requests[(i + j) % len(requests)]
                result = engine.query(request)
                if collect is not None:
                    collect.append((request.function, result))
        except Exception as exc:  # noqa: BLE001 - asserted below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return (N_CLIENTS * QUERIES_PER_CLIENT) / elapsed


def _http_qps(engine, requests):
    """End-to-end HTTP round over real sockets (reported, not asserted)."""
    server = EngineServer(("127.0.0.1", 0), engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    payloads = [
        json.dumps({
            "binary_b64": base64.b64encode(
                request.binary.to_bytes()
            ).decode("ascii"),
            "function": request.function,
            "top_k": TOP_K,
        }).encode("utf-8")
        for request in requests
    ]
    barrier = threading.Barrier(N_CLIENTS + 1)
    errors = []

    def client(i):
        barrier.wait()
        try:
            for j in range(QUERIES_PER_CLIENT):
                http_request = urllib.request.Request(
                    server.url + "/v1/query",
                    data=payloads[(i + j) % len(payloads)],
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(http_request, timeout=120) as r:
                    json.loads(r.read())
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    server.shutdown()
    server.server_close()
    assert not errors, errors
    return (N_CLIENTS * QUERIES_PER_CLIENT) / elapsed


def test_serve_throughput(trained_asteria):
    # one corpus, ingested once; both engines share the store + cache
    setup = AsteriaEngine(EngineConfig(), model=trained_asteria)
    ingested = setup.ingest(IngestRequest(
        corpus_images=scaled(6), corpus_seed=11
    ))
    serial = AsteriaEngine(
        EngineConfig(micro_batch_size=1, micro_batch_wait_ms=0.0),
        model=trained_asteria, store=setup.store, cache=setup.cache,
    )
    batched = AsteriaEngine(
        EngineConfig(micro_batch_size=64, micro_batch_wait_ms=2.0),
        model=trained_asteria, store=setup.store, cache=setup.cache,
    )
    requests = _query_requests(setup)

    # warm both engines: tree extraction memo + ANN index build + a
    # serial reference for the correctness cross-check
    reference = {}
    for request in requests:
        reference[request.function] = serial.query(request)
        batched.query(request)

    # two measured rounds each, best-of (first-round jitter absorbs the
    # thread spawn + any lazy state); serial first so the batched engine
    # cannot profit from anything it warms
    serial_qps = max(_storm(serial, requests) for _round in range(2))
    batched_results = []
    batched_qps = max(
        _storm(batched, requests,
               collect=batched_results if _round == 0 else None)
        for _round in range(2)
    )
    speedup = batched_qps / serial_qps

    stats = batched.stats()
    lines = [
        f"corpus: {ingested.n_rows_total} indexed functions "
        f"({ingested.n_images} images); "
        f"{len(requests)} distinct query functions",
        f"storm: {N_CLIENTS} concurrent clients x "
        f"{QUERIES_PER_CLIENT} queries each",
        "",
        f"{'engine':<24} {'queries/s':>10}",
        f"{'serial (batch=1)':<24} {serial_qps:>10.1f}",
        f"{'micro-batched (<=64)':<24} {batched_qps:>10.1f}",
        "",
        f"micro-batcher: {stats.micro_batches} batches / "
        f"{stats.micro_batched_items} encodes, "
        f"max width {stats.micro_batch_max}, "
        f"mean {stats.micro_batch_mean:.1f}",
        f"speedup: {speedup:.2f}x (required >= {MIN_SPEEDUP:g}x"
        + (f"; floor relaxed: {N_CPUS} CPU(s))" if N_CPUS < 4 else ")"),
    ]

    http_qps = _http_qps(batched, requests[: max(4, len(requests) // 2)])
    lines.append(f"end-to-end HTTP (micro-batched): {http_qps:.1f} queries/s "
                 f"(reported only)")
    # write the diagnostic table before any assert so the CI artifact
    # survives every failure class, not just the throughput one
    write_result("serve_throughput", "\n".join(lines))
    emit_bench_json(
        "serve_throughput",
        {
            "n_rows": ingested.n_rows_total,
            "n_cpus": N_CPUS,
            "n_clients": N_CLIENTS,
            "queries_per_client": QUERIES_PER_CLIENT,
            "serial_qps": serial_qps,
            "batched_qps": batched_qps,
            "speedup": speedup,
            "http_qps": http_qps,
            "micro_batches": stats.micro_batches,
            "micro_batched_items": stats.micro_batched_items,
            "micro_batch_max": stats.micro_batch_max,
            "micro_batch_mean": stats.micro_batch_mean,
        },
        floors={"min_speedup": MIN_SPEEDUP},
    )

    # correctness: every concurrent result matches the serial reference
    for function, result in batched_results:
        expected = reference[function]
        assert [(h.row, h.score) for h in result.hits] \
            == [(h.row, h.score) for h in expected.hits], (
            f"concurrent result for {function} diverged from serial"
        )

    # the batcher must have actually coalesced under the storm
    assert stats.micro_batch_max > 1

    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched serving {speedup:.2f}x vs serial "
        f"(required >= {MIN_SPEEDUP:g}x)"
    )
