"""Embedding index: ingest throughput, query latency, and LSH recall.

The index subsystem's claim is the paper's offline/online split at corpus
scale: encode once into a persistent store, then answer top-k queries with
one matrix-at-once pass instead of O(corpus) per-pair Python calls.  This
bench measures all three legs on the firmware corpus:

* **ingest** -- functions/second into the sharded store (offline phase);
* **query** -- batched index query vs. the seed's exhaustive per-pair scan
  (must be >= 5x faster);
* **recall** -- LSH top-10 against the exact backend (must be >= 0.9);

and verifies end-to-end that the index-backed vulnerability search confirms
exactly the same CVE findings as the exhaustive reference path.
"""

import time

import numpy as np

from repro.evalsuite.vulnsearch import (
    VulnerabilitySearch,
    build_firmware_dataset,
)
from repro.index.ann import LSHIndex

from benchmarks.conftest import emit_bench_json, scaled, write_result

MIN_SPEEDUP = 5.0
MIN_RECALL_AT_10 = 0.9


def test_index_search(benchmark, trained_asteria):
    dataset = build_firmware_dataset(
        n_images=scaled(14), seed=5, vulnerable_fraction=0.55
    )
    search = VulnerabilitySearch(trained_asteria, threshold=0.8)

    # -- offline phase: ingest throughput ---------------------------------
    t0 = time.perf_counter()
    service = search.build_index(dataset)
    ingest_s = time.perf_counter() - t0
    n_functions = len(service.store)
    ingest_rate = n_functions / ingest_s

    library = search.encode_library()
    queries = [encoding for _cve, (_e, encoding) in sorted(library.items())]

    # -- online phase: batched index query vs. per-pair exhaustive scan ---
    store = service.store
    corpus = [
        store.metadata_at(row).encoding(store.vectors()[row])
        for row in range(n_functions)
    ]

    t0 = time.perf_counter()
    for query in queries:
        for encoding in corpus:
            trained_asteria.similarity(query, encoding)
    exhaustive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for query in queries:
        service.query(query, top_k=10)
    batched_s = time.perf_counter() - t0
    speedup = exhaustive_s / batched_s

    # -- LSH recall@10 against the exact backend --------------------------
    exact_index = service.index()
    lsh_index = LSHIndex(
        trained_asteria, store.vectors(), store.callee_counts(), seed=9
    )
    recalls = []
    for query in queries:
        top_exact = {n.row for n in exact_index.top_k(query, k=10)}
        top_lsh = {n.row for n in lsh_index.top_k(query, k=10)}
        recalls.append(len(top_exact & top_lsh) / 10)
    recall = float(np.mean(recalls))

    # -- end-to-end equivalence with the exhaustive protocol --------------
    report_ix, cands_ix = search.search(dataset, service=service)
    report_ex, cands_ex = search.search_exhaustive(dataset)

    def key(c):
        return (c.entry.cve_id, c.image.identifier, c.binary_name,
                c.function_name, c.confirmed)

    assert {key(c) for c in cands_ix} == {key(c) for c in cands_ex}
    assert report_ix.total_confirmed() == report_ex.total_confirmed()

    lines = [
        f"corpus: {n_functions} functions from "
        f"{report_ix.n_unpacked}/{report_ix.n_images} unpackable images, "
        f"{store.n_shards} shard(s)",
        "",
        f"ingest:      {ingest_s:8.3f} s total   "
        f"{ingest_rate:10.1f} functions/s",
        f"exhaustive:  {exhaustive_s:8.3f} s for {len(queries)} queries "
        f"(per-pair Python calls)",
        f"index:       {batched_s:8.3f} s for {len(queries)} queries "
        f"(batched matrix scoring)",
        f"speedup:     {speedup:8.1f} x  (required >= {MIN_SPEEDUP:.0f}x)",
        f"LSH recall@10 vs exact: {recall:.3f}  "
        f"(required >= {MIN_RECALL_AT_10})",
        "",
        f"confirmed CVE findings, index path:      "
        f"{report_ix.total_confirmed()}",
        f"confirmed CVE findings, exhaustive path: "
        f"{report_ex.total_confirmed()}",
    ]
    write_result("index_search", "\n".join(lines))
    emit_bench_json(
        "index_search",
        {
            "n_functions": n_functions,
            "n_queries": len(queries),
            "ingest_s": ingest_s,
            "ingest_functions_per_s": ingest_rate,
            "exhaustive_s": exhaustive_s,
            "batched_s": batched_s,
            "speedup": speedup,
            "lsh_recall_at_10": recall,
            "confirmed_index": report_ix.total_confirmed(),
            "confirmed_exhaustive": report_ex.total_confirmed(),
        },
        floors={
            "min_speedup": MIN_SPEEDUP,
            "min_recall_at_10": MIN_RECALL_AT_10,
        },
    )

    assert speedup >= MIN_SPEEDUP
    assert recall >= MIN_RECALL_AT_10

    query = queries[0]
    benchmark(lambda: service.query(query, top_k=10))
