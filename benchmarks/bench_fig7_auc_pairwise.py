"""Figure 7: AUC per pair-wise architecture combination.

Regenerates the six-combination bar chart (arm-ppc, arm-x64, ppc-x64,
x86-arm, x86-ppc, x86-x64) for all four approaches.  Expected shape: the
ordering of Figure 6 holds within every combination.
"""

from repro.baselines.diaphora import DiaphoraMatcher
from repro.core import build_cross_arch_pairs
from repro.core.pairs import ARCH_COMBINATIONS
from repro.evalsuite.metrics import roc_auc

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_fig7_auc_pairwise(benchmark, trained_asteria, trained_gemini,
                           openssl, asteria_scores):
    encode = asteria_scores["encode"]
    diaphora = DiaphoraMatcher()
    gemini_cache = {}

    def gemini_encode(fn):
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in gemini_cache:
            gemini_cache[key] = trained_gemini.encode(openssl.acfg_for(fn))
        return gemini_cache[key]

    lines = [
        f"{'Combo':<10} {'Asteria':>8} {'WOC':>8} {'Gemini':>8} {'Diaphora':>9}"
    ]
    results = {}
    for combo in ARCH_COMBINATIONS:
        pairs = build_cross_arch_pairs(
            openssl.functions, scaled(15), combos=(combo,), seed=13
        )
        labels = [1 if p.label > 0 else 0 for p in pairs]
        asteria = [
            trained_asteria.similarity(encode(p.first), encode(p.second))
            for p in pairs
        ]
        woc = [
            trained_asteria.similarity(
                encode(p.first), encode(p.second), calibrate=False
            )
            for p in pairs
        ]
        gemini = [
            trained_gemini.similarity_from_vectors(
                gemini_encode(p.first), gemini_encode(p.second)
            )
            for p in pairs
        ]
        dia = [diaphora.similarity(p.first.ast, p.second.ast) for p in pairs]
        row = {
            "asteria": roc_auc(labels, asteria),
            "woc": roc_auc(labels, woc),
            "gemini": roc_auc(labels, gemini),
            "diaphora": roc_auc(labels, dia),
        }
        results[combo] = row
        lines.append(
            f"{combo[0]}-{combo[1]:<6} {row['asteria']:>8.3f} "
            f"{row['woc']:>8.3f} {row['gemini']:>8.3f} {row['diaphora']:>9.3f}"
        )
    write_result("fig7_auc_pairwise", "\n".join(lines))
    emit_bench_json(
        "fig7_auc_pairwise",
        {
            "auc_by_combo": {
                f"{combo[0]}-{combo[1]}": row
                for combo, row in results.items()
            },
        },
    )

    # Shape: Asteria beats Gemini and Diaphora in every combination.
    for combo, row in results.items():
        assert row["asteria"] > row["gemini"], combo
        assert row["asteria"] > row["diaphora"], combo

    first = next(iter(results))
    benchmark(
        build_cross_arch_pairs, openssl.functions, 5,
        combos=(first,), seed=14,
    )
