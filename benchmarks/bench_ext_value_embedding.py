"""Extension ablation: the §VII constants/strings embedding.

The paper's discussion proposes embedding the constant values and string
contents that digitisation drops, predicting an accuracy gain at some
computational cost.  This bench implements that prediction check: AUC of
plain Asteria vs the value-aware variant at several blend weights.
Expected shape: the value features never hurt at small weights (literals
are architecture-invariant) and extraction cost stays far below encoding
cost.
"""

import time

from repro.core.extensions import ValueAwareAsteria, ValueFeatureExtractor
from repro.evalsuite.metrics import roc_auc

from benchmarks.conftest import emit_bench_json, write_result

WEIGHTS = (0.0, 0.25, 0.5)


def test_extension_value_embedding(benchmark, trained_asteria, eval_pairs,
                                   asteria_scores):
    labels = asteria_scores["labels"]
    lines = [f"{'value weight':>12} {'AUC':>7}"]
    aucs = {}
    for weight in WEIGHTS:
        aware = ValueAwareAsteria(model=trained_asteria, value_weight=weight)
        cache = {}

        def encode(fn, aware=aware, cache=cache):
            key = (fn.arch, fn.binary_name, fn.name)
            if key not in cache:
                cache[key] = aware.encode_function(fn)
            return cache[key]

        scores = [
            aware.similarity(encode(p.first), encode(p.second))
            for p in eval_pairs
        ]
        aucs[weight] = roc_auc(labels, scores)
        lines.append(f"{weight:>12.2f} {aucs[weight]:>7.4f}")

    extractor = ValueFeatureExtractor()
    sample = eval_pairs[0].first.ast
    started = time.perf_counter()
    for _ in range(100):
        extractor.extract(sample)
    extract_s = (time.perf_counter() - started) / 100
    lines.append("")
    lines.append(f"value-feature extraction: {extract_s:.2e} s/function "
                 f"(vs Tree-LSTM encoding, see fig10b)")
    write_result("ext_value_embedding", "\n".join(lines))
    emit_bench_json(
        "ext_value_embedding",
        {
            "auc_by_weight": {str(w): auc for w, auc in aucs.items()},
            "extract_s_per_function": extract_s,
        },
        floors={"max_auc_drop_at_0.25": 0.03},
    )

    # Shape: small blend weights do not degrade the model.
    assert aucs[0.25] >= aucs[0.0] - 0.03

    benchmark(extractor.extract, sample)
