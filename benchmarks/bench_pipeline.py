"""Staged corpus pipeline: cold vs warm vs parallel offline runs.

Regenerates the pipeline overhead table over a firmware corpus:

* **per-function reference** -- the seed's inline loop (per-tree
  ``encode_function``, no cache), which the pipeline replaced;
* **cold** -- the staged pipeline on an empty on-disk artifact cache
  (decompile + preprocess + level-batched encode everything);
* **warm** -- the same corpus over the now-populated cache: must skip
  decompile and encode entirely (asserted via the instrumentation);
* **parallel** -- a cold ``jobs=2`` run, asserted bit-for-bit identical
  to the serial cold run;
* **weight swap** -- a different model over the same warm cache: the
  ``enc`` artifacts miss (they are fingerprint-keyed) so every binary
  re-encodes, but the model-independent ``ctrees`` plans hit, so zero
  trees are recompiled (counter-asserted).

``PIPELINE_BENCH_MIN_WARM_SPEEDUP`` (default 1.5) sets the warm-over-cold
floor; CI runs at a reduced scale with the same floor.
"""

import os
import time

import numpy as np

from repro.core import Asteria, AsteriaConfig
from repro.evalsuite.vulnsearch import build_firmware_dataset
from repro.pipeline import ArtifactCache, CorpusPipeline

from benchmarks.conftest import emit_bench_json, scaled, write_result

MIN_WARM_SPEEDUP = float(
    os.environ.get("PIPELINE_BENCH_MIN_WARM_SPEEDUP", "1.5")
)


def test_pipeline_cold_warm_parallel(benchmark, tmp_path, trained_asteria):
    dataset = build_firmware_dataset(n_images=scaled(12), seed=11)
    model = trained_asteria

    # The seed's per-function loop: unpack/decompile inline, per-tree encode.
    from repro.binformat.binwalk import UnpackError, unpack_firmware
    from repro.decompiler.hexrays import decompile_binary

    started = time.perf_counter()
    n_reference = 0
    for image in dataset.images:
        try:
            binaries = unpack_firmware(image)
        except UnpackError:
            continue
        for binary in binaries:
            for fn in decompile_binary(binary, skip_errors=True):
                if fn.ast_size() < model.config.min_ast_size:
                    continue
                model.encode_function(fn)
                n_reference += 1
    per_function_s = time.perf_counter() - started

    root = tmp_path / "cache"
    started = time.perf_counter()
    cold = CorpusPipeline(model, cache=ArtifactCache(root)).run_images(
        dataset.images
    )
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    warm = CorpusPipeline(model, cache=ArtifactCache(root)).run_images(
        dataset.images
    )
    warm_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = CorpusPipeline(
        model, jobs=2, cache=ArtifactCache(tmp_path / "cache2")
    ).run_images(dataset.images)
    parallel_s = time.perf_counter() - started

    # Weight swap: a different model over the same warm cache.  The
    # fingerprint-keyed encodings miss, but the model-independent ctrees
    # plans hit -- only the GEMMs re-run, no tree is recompiled.
    swapped_model = Asteria(AsteriaConfig(seed=23))
    started = time.perf_counter()
    swapped = CorpusPipeline(
        swapped_model, cache=ArtifactCache(root)
    ).run_images(dataset.images)
    swap_s = time.perf_counter() - started

    stats = cold.stats
    lines = [
        f"corpus: {stats.n_images} images, {stats.n_binaries} binaries "
        f"({stats.n_unique_binaries} unique), "
        f"{stats.n_functions} functions",
        "",
        f"{'run':<28} {'seconds':>9}   notes",
        f"{'per-function (seed loop)':<28} {per_function_s:>9.3f}   "
        f"per-tree encode, no cache",
        f"{'pipeline cold':<28} {cold_s:>9.3f}   "
        f"{per_function_s / cold_s:.1f}x over per-function "
        f"(batched encode)",
        f"{'pipeline warm':<28} {warm_s:>9.3f}   "
        f"{cold_s / warm_s:.1f}x over cold (cache hits: "
        f"{warm.stats.cache.encoding_hits}, extracted 0, encoded 0)",
        f"{'pipeline cold --jobs 2':<28} {parallel_s:>9.3f}   "
        f"bit-for-bit identical to serial",
        f"{'pipeline weight swap':<28} {swap_s:>9.3f}   "
        f"re-encode only (ctrees hits: "
        f"{swapped.stats.cache.ctree_hits}, "
        f"{swapped.stats.n_trees_compiled} trees recompiled)",
        "",
        "cold stage split: "
        f"decompile {stats.times.decompile_s:.3f}s, "
        f"preprocess {stats.times.preprocess_s:.3f}s, "
        f"encode {stats.times.encode_s:.3f}s",
    ]
    write_result("pipeline", "\n".join(lines))
    emit_bench_json(
        "pipeline",
        {
            "n_functions": stats.n_functions,
            "n_binaries": stats.n_binaries,
            "per_function_s": per_function_s,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "parallel_s": parallel_s,
            "weight_swap_s": swap_s,
            "weight_swap_trees_compiled": swapped.stats.n_trees_compiled,
            "weight_swap_ctree_hits": swapped.stats.cache.ctree_hits,
            "warm_speedup": cold_s / warm_s,
            "cold_stage_seconds": {
                "decompile": stats.times.decompile_s,
                "preprocess": stats.times.preprocess_s,
                "encode": stats.times.encode_s,
            },
        },
        floors={"min_warm_speedup": MIN_WARM_SPEEDUP},
    )

    # Warm runs touch neither the decompiler nor the encoder.
    assert warm.stats.n_extracted == 0
    assert warm.stats.n_encoded == 0
    assert warm.stats.cache.misses == 0
    assert warm.stats.cache.encoding_hits == warm.stats.n_unique_binaries

    # Weight swap: trees and plans hit, only the encodings re-run.
    assert swapped.stats.n_extracted == 0
    assert swapped.stats.n_encoded == swapped.stats.n_unique_binaries
    assert swapped.stats.n_trees_compiled == 0, (
        f"weight swap recompiled {swapped.stats.n_trees_compiled} trees; "
        f"ctrees plans should be model-independent"
    )
    assert swapped.stats.cache.ctree_hits > 0
    assert swapped.stats.cache.encoding_hits == 0

    # All three pipeline runs agree; the reference counted the same corpus.
    assert n_reference == cold.stats.n_functions
    cold_vectors = np.stack([e.vector for _i, e in cold.encodings])
    assert np.array_equal(
        cold_vectors, np.stack([e.vector for _i, e in warm.encodings])
    )
    assert np.array_equal(
        cold_vectors, np.stack([e.vector for _i, e in parallel.encodings])
    )
    assert [(i, e.name) for i, e in cold.encodings] \
        == [(i, e.name) for i, e in parallel.encodings]

    assert warm_s * MIN_WARM_SPEEDUP < cold_s, (
        f"warm run only {cold_s / warm_s:.2f}x faster than cold "
        f"(floor {MIN_WARM_SPEEDUP}x)"
    )

    # benchmark the steady state: a fully warm offline pass
    benchmark(
        lambda: CorpusPipeline(
            model, cache=ArtifactCache(root)
        ).run_images(dataset.images)
    )
