"""Figure 10(a): cumulative distribution of AST sizes.

Regenerates the AST-size CDF over the evaluation corpus.  Expected shape:
heavily left-skewed (the paper reports 48.6% of ASTs under 20 nodes and
97.4% under 200; our generator is tuned for the same small-function
regime).
"""

import numpy as np

from repro.evalsuite.timing import ast_size_cdf

from benchmarks.conftest import emit_bench_json, write_result


def test_fig10a_ast_size_cdf(benchmark, openssl):
    sizes = [
        fn.ast_size()
        for arch_functions in openssl.functions.values()
        for fn in arch_functions
    ]
    sorted_sizes, fractions = ast_size_cdf(sizes)
    lines = [f"n = {len(sizes)} ASTs"]
    for cutoff in (20, 40, 80, 200, 300):
        fraction = float(np.mean(sorted_sizes <= cutoff))
        lines.append(f"ASTs with size <= {cutoff:>3}: {fraction:6.1%}")
    lines.append("")
    lines.append("CDF samples (size -> cumulative fraction):")
    for q in (0.25, 0.5, 0.75, 0.9, 0.99):
        index = min(int(q * len(sorted_sizes)), len(sorted_sizes) - 1)
        lines.append(f"  p{int(q * 100):>2}: size {int(sorted_sizes[index])}")
    write_result("fig10a_ast_cdf", "\n".join(lines))
    emit_bench_json(
        "fig10a_ast_cdf",
        {
            "n_asts": len(sizes),
            "fraction_by_cutoff": {
                str(cutoff): float(np.mean(sorted_sizes <= cutoff))
                for cutoff in (20, 40, 80, 200, 300)
            },
        },
        floors={"min_fraction_le_200": 0.7},
    )

    # Shape: the distribution is dominated by small ASTs.
    assert float(np.mean(sorted_sizes <= 200)) > 0.7
    assert fractions[-1] == 1.0

    benchmark(ast_size_cdf, sizes)
