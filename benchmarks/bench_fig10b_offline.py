"""Figure 10(b): offline-phase time per function, by approach.

Regenerates the offline timing comparison: Asteria's decompilation (A-D),
preprocessing (A-P) and Tree-LSTM encoding (A-E) versus Diaphora's hashing
(D-H) and Gemini's ACFG extraction (G-EX) and encoding (G-EN).  Expected
shape: Asteria's offline phase (dominated by decompilation + per-node
Tree-LSTM encoding) is slower than both baselines', and encoding time grows
with AST size.  The staged-pipeline stage totals (cold and warm over the
artifact cache) are reported from the pipeline's own instrumentation.
"""

import numpy as np

from repro.evalsuite.timing import (
    measure_encode_batched,
    measure_offline,
    measure_offline_pipeline,
)
from repro.pipeline import ArtifactCache

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_fig10b_offline_phase(benchmark, openssl, trained_asteria,
                              trained_gemini):
    rows = measure_offline(
        openssl, trained_asteria, trained_gemini,
        max_functions=scaled(40), seed=3,
    )
    assert rows

    def mean(attribute):
        return float(np.mean([getattr(r, attribute) for r in rows]))

    means = {
        "A-D (decompile)": mean("decompile_s"),
        "A-P (preprocess)": mean("preprocess_s"),
        "A-E (encode)": mean("encode_s"),
        "D-H (diaphora hash)": mean("diaphora_hash_s"),
        "G-EX (acfg extract)": mean("gemini_extract_s"),
        "G-EN (acfg encode)": mean("gemini_encode_s"),
    }
    batched = measure_encode_batched(
        openssl, trained_asteria, batch_size=64,
        max_functions=scaled(40), seed=3,
    )
    lines = [f"{'Phase':<22} {'mean seconds':>13}"]
    for name, value in means.items():
        lines.append(f"{name:<22} {value:>13.6f}")
    lines.append(
        f"{'A-E (batched @64)':<22} {batched.batched_per_function_s:>13.6f}"
        f"   ({batched.speedup:.1f}x over per-tree A-E on the same "
        f"{batched.n_functions} fns)"
    )
    cache = ArtifactCache.in_memory()
    cold = measure_offline_pipeline(openssl, trained_asteria, cache=cache)
    warm = measure_offline_pipeline(openssl, trained_asteria, cache=cache)
    lines.append("")
    lines.append(
        "staged pipeline over the whole corpus "
        f"({cold.n_functions} functions):"
    )
    lines.append(
        f"  cold: decompile {cold.times.decompile_s:.3f}s, "
        f"preprocess {cold.times.preprocess_s:.3f}s, "
        f"encode {cold.times.encode_s:.3f}s"
    )
    lines.append(
        f"  warm: {warm.cache.encoding_hits} cached binaries, "
        f"extracted {warm.n_extracted}, encoded {warm.n_encoded}"
    )
    lines.append("")
    lines.append("encode time by AST size bucket:")
    buckets = [(0, 50), (50, 100), (100, 200), (200, 10 ** 9)]
    for low, high in buckets:
        sample = [r.encode_s for r in rows if low <= r.ast_size < high]
        if sample:
            lines.append(
                f"  size [{low:>3}, {high if high < 10**9 else 'inf'}): "
                f"{float(np.mean(sample)):.6f} s over {len(sample)} fns"
            )
    write_result("fig10b_offline", "\n".join(lines))
    emit_bench_json(
        "fig10b_offline",
        {
            "n_functions": len(rows),
            "mean_phase_seconds": means,
            "batched_per_function_s": batched.batched_per_function_s,
            "batched_speedup": batched.speedup,
            "pipeline_cold_stage_seconds": {
                "decompile": cold.times.decompile_s,
                "preprocess": cold.times.preprocess_s,
                "encode": cold.times.encode_s,
            },
        },
    )

    # Warm pipeline runs skip the offline work entirely.
    assert warm.n_extracted == 0 and warm.n_encoded == 0

    # Shape: Asteria's offline stage is the most expensive of the three.
    asteria_offline = (means["A-D (decompile)"] + means["A-P (preprocess)"]
                       + means["A-E (encode)"])
    assert asteria_offline > means["D-H (diaphora hash)"]
    assert asteria_offline > means["G-EX (acfg extract)"] + means["G-EN (acfg encode)"]
    # Encoding grows with AST size.
    small = [r.encode_s for r in rows if r.ast_size < 80]
    large = [r.encode_s for r in rows if r.ast_size >= 80]
    if small and large:
        assert float(np.mean(large)) > float(np.mean(small))

    binary = openssl.binaries["x86"][0]
    record = binary.functions[0]
    from repro.decompiler.hexrays import decompile_function

    benchmark(decompile_function, binary, record)
