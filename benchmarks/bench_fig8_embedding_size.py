"""Figure 8: impact of the embedding size (8 -> 128).

Retrains the model at each embedding dimension and reports test AUC.
Expected shape (paper: 0.982/0.985/0.983/0.980/0.976): all sizes perform
closely, with no monotone gain from larger embeddings -- 16 is chosen as
the accuracy/complexity sweet spot, and 128 shows mild overfitting.
"""

from repro.core import Asteria, AsteriaConfig, TrainConfig, Trainer

from benchmarks.conftest import emit_bench_json, write_result

EMBEDDING_SIZES = (8, 16, 32, 64, 128)


def test_fig8_embedding_size(benchmark, train_dev_pairs):
    train, dev = train_dev_pairs
    lines = [f"{'Dim':>5} {'best AUC':>9}"]
    aucs = {}
    for dim in EMBEDDING_SIZES:
        model = Asteria(AsteriaConfig(embedding_dim=dim, seed=dim))
        trainer = Trainer(model.siamese, TrainConfig(epochs=2, lr=0.05))
        history = trainer.train(train, dev)
        aucs[dim] = history.best_auc
        lines.append(f"{dim:>5} {history.best_auc:>9.4f}")
    write_result("fig8_embedding_size", "\n".join(lines))
    emit_bench_json(
        "fig8_embedding_size",
        {"auc_by_dim": {str(dim): auc for dim, auc in aucs.items()}},
        floors={"min_auc": 0.8, "max_auc_spread": 0.15},
    )

    # Shape: every size trains to a usable model, and the spread is small
    # (the paper's spread across sizes is under 0.01 AUC).
    assert all(auc > 0.8 for auc in aucs.values())
    assert max(aucs.values()) - min(aucs.values()) < 0.15

    model16 = Asteria(AsteriaConfig(embedding_dim=16))
    tree = train[0].t1
    benchmark(model16.encode_tree, tree)
