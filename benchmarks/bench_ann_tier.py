"""Million-function tiered ANN index: recall@10-vs-throughput frontier.

The tiered backend's claims, measured on synthetic corpora
(:mod:`repro.index.synth`: clustered embeddings with known ground-truth
neighbors, scored by the distance-monotone head) at every size in
``ANN_TIER_SIZES`` (default ``100000,1000000``):

* **throughput** -- at the largest size, the best tiered operating
  point with recall@10 >= 0.9 vs the exact sweep must answer queries
  >= 5x faster than the exact float32 full sweep
  (``ANN_TIER_MIN_SPEEDUP`` relaxes the floor for slow CI runners);
* **memory** -- the quantized tier (int8 codes + centroids +
  assignments) must hold <= 0.3x the resident bytes of the float32
  vectors it approximates;
* **fidelity** -- the frontier (qps vs recall@10 across ``nprobe``)
  is emitted per corpus size so the recall/speed trade stays diffable
  across revisions;
* **durability** -- reopening the persisted quantized state quantizes
  **zero** rows and reproduces the fresh index's results exactly.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.index.ann import BruteForceIndex
from repro.index.quant import IvfPqIndex
from repro.index.store import EmbeddingStore
from repro.index.synth import (
    SynthSpec,
    distance_head_model,
    synth_corpus,
    synth_queries,
)

from benchmarks.conftest import emit_bench_json, write_result

SIZES = [
    int(s) for s in os.environ.get(
        "ANN_TIER_SIZES", "100000,1000000"
    ).split(",") if s.strip()
]
MIN_SPEEDUP = float(os.environ.get("ANN_TIER_MIN_SPEEDUP", "5.0"))
MIN_RECALL_AT_10 = 0.9
MAX_BYTES_RATIO = 0.3
DIM = 64
CLUSTER_SIZE = 16
N_QUERIES = 32
TOP_K = 10
NPROBE_FRONTIER = (1, 2, 4, 8, 16)
SHARD_SIZE = 8192


def _hit_rows(results):
    return [set(n.row for n in neighbors) for neighbors in results]


def _recall(hits, truth):
    return float(np.mean([
        len(h & t) / max(1, len(t)) for h, t in zip(hits, truth)
    ]))


def _measure(index, queries, repeats: int = 1):
    """(results, qps) of a batched top-k pass through ``index``."""
    began = time.perf_counter()
    for _ in range(repeats):
        results = index.top_k_batch(queries, k=TOP_K)
    elapsed = time.perf_counter() - began
    return results, len(queries) * repeats / max(elapsed, 1e-9)


def _bench_size(root: Path, n: int) -> dict:
    spec = SynthSpec(
        n_functions=n, dim=DIM, cluster_size=CLUSTER_SIZE, seed=11
    )
    model = distance_head_model(DIM)
    store = EmbeddingStore.create(root, dim=DIM, shard_size=SHARD_SIZE)
    began = time.perf_counter()
    synth_corpus(store, spec)
    synth_s = time.perf_counter() - began
    rng = np.random.default_rng(13)
    clusters = sorted(
        rng.choice(spec.n_clusters, size=N_QUERIES, replace=False)
    )
    queries = synth_queries(spec, clusters)
    vectors = store.vectors()
    counts = store.callee_counts()

    exact = BruteForceIndex(model, vectors, counts)
    exact_results, exact_qps = _measure(exact, queries)
    truth = _hit_rows(exact_results)

    began = time.perf_counter()
    tier = IvfPqIndex(model, vectors, counts, seed=3)
    build_s = time.perf_counter() - began
    frontier = []
    for nprobe in NPROBE_FRONTIER:
        tier.nprobe = nprobe
        results, qps = _measure(tier, queries)
        frontier.append({
            "nprobe": nprobe,
            "qps": round(qps, 2),
            "recall_at_10": round(_recall(_hit_rows(results), truth), 4),
        })

    # durable round-trip: persisted state must reopen quantization-free
    # and reproduce the fresh index bit-for-bit
    tier.nprobe = 8
    params, arrays = tier.state_dict()
    store.write_ann_state(params, arrays)
    reopened = IvfPqIndex(
        model, store.vectors(), store.callee_counts(), seed=3,
        state=store.read_ann_state(),
    )
    fresh = tier.top_k_batch(queries, k=TOP_K)
    again = reopened.top_k_batch(queries, k=TOP_K)
    identical = fresh == again

    bytes_ratio = tier.resident_nbytes / (n * DIM * 4)
    eligible = [p for p in frontier if p["recall_at_10"] >= MIN_RECALL_AT_10]
    best = max(eligible, key=lambda p: p["qps"]) if eligible else None
    return {
        "n": n,
        "n_lists": int(tier.n_lists),
        "synth_s": round(synth_s, 2),
        "build_s": round(build_s, 2),
        "exact_qps": round(exact_qps, 3),
        "frontier": frontier,
        "best": best,
        "speedup": (
            round(best["qps"] / exact_qps, 2) if best else None
        ),
        "bytes_per_vector": round(tier.resident_nbytes / n, 2),
        "bytes_ratio_vs_float32": round(bytes_ratio, 4),
        "reopen_rows_quantized": int(reopened.rows_quantized),
        "reopen_identical": bool(identical),
    }


def test_ann_tier(tmp_path_factory):
    per_size = [
        _bench_size(
            tmp_path_factory.mktemp(f"ann_tier_{n}") / "idx", n
        )
        for n in SIZES
    ]
    lines = []
    for r in per_size:
        lines.append(
            f"n={r['n']:>9,}  lists={r['n_lists']:>5}  "
            f"synth={r['synth_s']:.1f}s  build={r['build_s']:.1f}s  "
            f"exact={r['exact_qps']:.2f} q/s  "
            f"bytes/vec={r['bytes_per_vector']:.1f} "
            f"({r['bytes_ratio_vs_float32']:.3f}x fp32)  "
            f"reopen_quantized={r['reopen_rows_quantized']}"
        )
        for p in r["frontier"]:
            marker = " <- best" if p == r["best"] else ""
            lines.append(
                f"    nprobe={p['nprobe']:>3}  qps={p['qps']:>9.2f}  "
                f"recall@10={p['recall_at_10']:.4f}{marker}"
            )
        lines.append(
            f"    speedup at recall>=0.9: "
            f"{r['speedup']}x (floor {MIN_SPEEDUP}x at the largest size)"
        )
    text = "\n".join(lines) + "\n"
    write_result("ann_tier", text)
    emit_bench_json(
        "ann_tier",
        metrics={"sizes": per_size},
        floors={
            "min_speedup_at_largest": MIN_SPEEDUP,
            "min_recall_at_10": MIN_RECALL_AT_10,
            "max_bytes_ratio_vs_float32": MAX_BYTES_RATIO,
            "reopen_rows_quantized": 0,
        },
    )
    for r in per_size:
        assert r["bytes_ratio_vs_float32"] <= MAX_BYTES_RATIO, (
            f"quantized tier holds {r['bytes_ratio_vs_float32']:.3f}x of "
            f"the float32 bytes at n={r['n']} (cap {MAX_BYTES_RATIO}x)"
        )
        assert r["reopen_rows_quantized"] == 0, (
            f"reopening persisted state re-quantized "
            f"{r['reopen_rows_quantized']} rows at n={r['n']}"
        )
        assert r["reopen_identical"], (
            f"persisted-state reopen changed results at n={r['n']}"
        )
        assert r["best"] is not None, (
            f"no operating point reached recall@10 >= "
            f"{MIN_RECALL_AT_10} at n={r['n']}: {r['frontier']}"
        )
    largest = max(per_size, key=lambda r: r["n"])
    assert largest["speedup"] >= MIN_SPEEDUP, (
        f"best tiered point at recall>=0.9 is only "
        f"{largest['speedup']}x over the exact sweep at "
        f"n={largest['n']} (floor {MIN_SPEEDUP}x)"
    )
