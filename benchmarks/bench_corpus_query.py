"""Corpus-scale query engine: mmap float32 shards + batched top-k.

The index read path's claims, measured on a >= 10k-function synthetic
corpus (clustered encodings, calibration counts tracking the clusters):

* **throughput** -- ``AnnIndex.top_k_batch`` answers Q queries with
  blockwise ``(Q, n)`` Siamese GEMM sweeps + ``argpartition`` selection.
  It must beat the **pre-PR per-query reference** (float64 stacked
  corpus, per-query concatenated-feature scoring, full-corpus
  ``np.lexsort`` -- reproduced verbatim below) by >= 4x, and must not be
  slower than the current single-query path it generalises;
* **memory** -- the float32 memory-mapped store must keep >= 4x less
  resident heap than the float64 in-memory baseline (vectors stay on
  disk, demand-paged);
* **fidelity** -- float32 scoring must reproduce the float64 reference
  ranking (top-10 overlap >= 0.9);
* **LSH** -- recall@10 vs. exact stays >= 0.9 (measured with the cosine
  head whose geometry the hyperplane family approximates, as in
  tests/test_index.py), and reopening the persisted LSH index projects
  **zero** corpus rows (instrumentation counter).

``CORPUS_BENCH_MIN_SPEEDUP`` relaxes the 4x floor for slow CI runners.
"""

import os
import time

import numpy as np

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.ann import BruteForceIndex, LSHIndex
from repro.index.store import EmbeddingStore

from benchmarks.conftest import emit_bench_json, scaled, write_result

MIN_SPEEDUP = float(os.environ.get("CORPUS_BENCH_MIN_SPEEDUP", "4.0"))
MIN_MEMORY_RATIO = 4.0
MIN_OVERLAP = 0.9
MIN_RECALL_AT_10 = 0.9
N_QUERIES = 64
TOP_K = 10


def _corpus(n: int, dim: int):
    """Clustered vectors (homologous-function analogue) + queries."""
    rng = np.random.default_rng(5)
    n_clusters = 50
    per = n // n_clusters
    centers = rng.normal(size=(n_clusters, dim)) * 2.0
    vectors = np.concatenate(
        [c + rng.normal(scale=0.2, size=(per, dim)) for c in centers]
    )
    counts = np.repeat(np.arange(n_clusters, dtype=np.int64), per)
    queries = [
        FunctionEncoding(
            name=f"q{i}", arch="x86", binary_name="query",
            vector=(centers[i % n_clusters]
                    + rng.normal(scale=0.15, size=dim)),
            callee_count=int(i % n_clusters),
        )
        for i in range(N_QUERIES)
    ]
    return vectors, counts, queries


def _legacy_topk(stacked64, counts64, w, query, k):
    """The pre-PR per-query path, verbatim: float64 stacked corpus,
    concatenated |diff| / product features through the head, softmax,
    calibration, then a full-corpus lexsort."""
    features = np.concatenate(
        [np.abs(stacked64 - query.vector), stacked64 * query.vector],
        axis=1,
    )
    logits = features @ w
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    m = exps[:, 1] / exps.sum(axis=1)
    scores = m * np.exp(-np.abs(counts64 - query.callee_count))
    rows = np.arange(stacked64.shape[0])
    return np.lexsort((rows, -scores))[:k]


def test_corpus_query(benchmark, tmp_path):
    model = Asteria(AsteriaConfig())  # hidden_dim=64
    dim = model.config.hidden_dim
    n = max(10_000, scaled(20_000))  # acceptance floor: >= 10k functions
    vectors, counts, queries = _corpus(n, dim)

    # -- offline: ingest into a float32 mmap store ------------------------
    store = EmbeddingStore.create(tmp_path / "idx", dim=dim,
                                  shard_size=2048)
    t0 = time.perf_counter()
    store.add_batch(
        FunctionEncoding(
            name=f"sub_{i:x}", arch="x86", binary_name="bin",
            vector=vectors[i], callee_count=int(counts[i]),
        )
        for i in range(n)
    )
    store.flush()
    ingest_s = time.perf_counter() - t0

    mapped = EmbeddingStore.open(tmp_path / "idx")
    index = BruteForceIndex(model, mapped.vectors(),
                            mapped.callee_counts())

    # -- resident memory: float64 in-memory vs float32 mmap ---------------
    baseline_store = EmbeddingStore.in_memory(dim=dim, dtype="float64")
    baseline_store.add_batch(
        FunctionEncoding(
            name=f"sub_{i:x}", arch="x86", binary_name="bin",
            vector=vectors[i], callee_count=int(counts[i]),
        )
        for i in range(n)
    )
    baseline_store.flush()
    baseline_store.vectors()
    baseline_store.callee_counts()
    mapped.vectors()
    mapped.callee_counts()
    resident_base = baseline_store.memory_footprint()["resident_bytes"]
    resident_mmap = mapped.memory_footprint()["resident_bytes"]
    # mmap vectors are demand-paged file cache, not heap; only the
    # callee-count array stays resident
    memory_ratio = resident_base / max(1, resident_mmap)

    # -- throughput: batched vs single-query vs pre-PR reference ----------
    index.top_k(queries[0], k=TOP_K)
    index.top_k_batch(queries[:8], k=TOP_K)  # warm both paths

    t0 = time.perf_counter()
    serial = [index.top_k(q, k=TOP_K) for q in queries]
    single_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = index.top_k_batch(queries, k=TOP_K)
    batched_s = time.perf_counter() - t0

    stacked64 = np.asarray(mapped.vectors()).astype(np.float64)
    counts64 = mapped.callee_counts()
    w = model.siamese.w.data
    _legacy_topk(stacked64, counts64, w, queries[0], TOP_K)  # warm
    t0 = time.perf_counter()
    legacy = [
        _legacy_topk(stacked64, counts64, w, q, TOP_K) for q in queries
    ]
    legacy_s = time.perf_counter() - t0

    speedup_vs_legacy = legacy_s / batched_s
    speedup_vs_single = single_s / batched_s

    # batched == serial ranking (same code path, same blocks)
    for a, b in zip(serial, batched):
        assert [x.row for x in a] == [x.row for x in b]
    # float32 scoring reproduces the float64 reference ranking
    overlap = float(np.mean([
        len(set(rows) & {x.row for x in batched[i]}) / TOP_K
        for i, rows in enumerate(legacy)
    ]))

    # -- LSH: recall + persisted-open does no re-projection ---------------
    # recall is a candidate-generation property: measure it under the
    # cosine head whose geometry random hyperplanes approximate (the
    # classification-head recall on a real trained corpus is asserted in
    # bench_index_search.py)
    cosine_model = Asteria(AsteriaConfig(head="regression"))
    exact_cos = BruteForceIndex(cosine_model, mapped.vectors(),
                                mapped.callee_counts())
    lsh = LSHIndex(cosine_model, mapped.vectors(),
                   mapped.callee_counts(), seed=9)
    assert lsh.rows_projected == n  # fresh build signs every row
    recalls = []
    for top_exact, top_lsh in zip(
        exact_cos.top_k_batch(queries, k=TOP_K),
        lsh.top_k_batch(queries, k=TOP_K),
    ):
        recalls.append(
            len({x.row for x in top_exact} & {x.row for x in top_lsh})
            / TOP_K
        )
    recall = float(np.mean(recalls))

    mapped.write_ann_state(*lsh.state_dict())
    reopened = EmbeddingStore.open(tmp_path / "idx")
    t0 = time.perf_counter()
    persisted = LSHIndex(cosine_model, reopened.vectors(),
                         reopened.callee_counts(), seed=9,
                         state=reopened.read_ann_state())
    persisted_open_s = time.perf_counter() - t0
    assert persisted.loaded_from_state
    assert persisted.rows_projected == 0  # no re-projection pass

    lines = [
        f"corpus: {n} functions, dim {dim}, "
        f"{mapped.n_shards} mmap float32 shard(s); "
        f"{N_QUERIES} queries, top-{TOP_K}",
        "",
        f"ingest:            {ingest_s:7.3f} s "
        f"({n / ingest_s:10.0f} functions/s)",
        f"resident memory:   float64 in-memory {resident_base:>10d} B   "
        f"float32 mmap {resident_mmap:>8d} B   "
        f"ratio {memory_ratio:6.1f}x  (required >= "
        f"{MIN_MEMORY_RATIO:.0f}x)",
        "",
        f"per-query (pre-PR reference): {legacy_s:7.3f} s  "
        f"{N_QUERIES / legacy_s:8.1f} queries/s",
        f"per-query (argpartition):     {single_s:7.3f} s  "
        f"{N_QUERIES / single_s:8.1f} queries/s",
        f"batched top-k:                {batched_s:7.3f} s  "
        f"{N_QUERIES / batched_s:8.1f} queries/s",
        f"batched vs pre-PR:  {speedup_vs_legacy:6.1f} x  "
        f"(required >= {MIN_SPEEDUP:.1f}x)",
        f"batched vs single:  {speedup_vs_single:6.2f} x",
        f"top-10 overlap float32 vs float64: {overlap:.3f}  "
        f"(required >= {MIN_OVERLAP})",
        "",
        f"LSH recall@10 vs exact (cosine head): {recall:.3f}  "
        f"(required >= {MIN_RECALL_AT_10})",
        f"persisted-LSH reopen: {persisted_open_s * 1000:7.1f} ms, "
        f"0 rows re-projected (fresh build signs {n})",
    ]
    write_result("corpus_query", "\n".join(lines))
    emit_bench_json(
        "corpus_query",
        {
            "n_functions": n,
            "n_queries": N_QUERIES,
            "ingest_s": ingest_s,
            "resident_bytes_float64": resident_base,
            "resident_bytes_mmap": resident_mmap,
            "memory_ratio": memory_ratio,
            "legacy_s": legacy_s,
            "single_s": single_s,
            "batched_s": batched_s,
            "speedup_vs_legacy": speedup_vs_legacy,
            "speedup_vs_single": speedup_vs_single,
            "top10_overlap": overlap,
            "lsh_recall_at_10": recall,
            "persisted_open_s": persisted_open_s,
        },
        floors={
            "min_speedup_vs_legacy": MIN_SPEEDUP,
            "min_memory_ratio": MIN_MEMORY_RATIO,
            "min_overlap": MIN_OVERLAP,
            "min_recall_at_10": MIN_RECALL_AT_10,
        },
    )

    assert memory_ratio >= MIN_MEMORY_RATIO
    assert speedup_vs_legacy >= MIN_SPEEDUP
    assert speedup_vs_single >= 0.9  # batching must not cost throughput
    assert overlap >= MIN_OVERLAP
    assert recall >= MIN_RECALL_AT_10

    benchmark(lambda: index.top_k_batch(queries[:8], k=TOP_K))
