"""Table II: number of binaries and functions per dataset and architecture.

Regenerates the dataset-statistics table.  The measured operation is the
per-package compile step that produces one row's binaries.
"""

from repro.compiler.pipeline import compile_package
from repro.evalsuite.vulnsearch import build_firmware_dataset
from repro.lang.generator import ProgramGenerator

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_table2_dataset_statistics(benchmark, buildroot, openssl):
    firmware = build_firmware_dataset(n_images=scaled(12), seed=5)
    lines = [
        f"{'Name':<10} {'Platform':<9} {'# binaries':>10} {'# functions':>12}"
    ]
    for name, dataset in (("Buildroot", buildroot), ("OpenSSL", openssl)):
        for stat in dataset.stats():
            lines.append(
                f"{name:<10} {stat.arch:<9} {stat.n_binaries:>10} "
                f"{stat.n_functions:>12}"
            )
    fw_counts = {}
    for image in firmware.images:
        if image.unknown_format:
            continue
        for binary in image.binaries:
            n_bins, n_fns = fw_counts.get(binary.arch, (0, 0))
            fw_counts[binary.arch] = (n_bins + 1, n_fns + len(binary.functions))
    for arch in sorted(fw_counts):
        n_bins, n_fns = fw_counts[arch]
        lines.append(f"{'Firmware':<10} {arch:<9} {n_bins:>10} {n_fns:>12}")
    total_bins = sum(s.n_binaries for d in (buildroot, openssl) for s in d.stats())
    total_bins += sum(v[0] for v in fw_counts.values())
    total_fns = buildroot.total_functions() + openssl.total_functions()
    total_fns += sum(v[1] for v in fw_counts.values())
    lines.append(f"{'Total':<10} {'':<9} {total_bins:>10} {total_fns:>12}")
    write_result("table2_datasets", "\n".join(lines))
    emit_bench_json(
        "table2_datasets",
        {
            "total_binaries": total_bins,
            "total_functions": total_fns,
            "firmware_by_arch": {
                arch: {"binaries": v[0], "functions": v[1]}
                for arch, v in sorted(fw_counts.items())
            },
        },
    )

    # Shape checks mirroring the paper: every corpus covers all four
    # architectures, and firmware skews to ARM/PPC.
    assert {s.arch for s in buildroot.stats()} == {"x86", "x64", "arm", "ppc"}
    arm_ppc = sum(v[0] for a, v in fw_counts.items() if a in ("arm", "ppc"))
    assert arm_ppc >= sum(v[0] for v in fw_counts.values()) / 2

    package = ProgramGenerator(seed=99).generate_package("bench")
    benchmark(compile_package, package, "arm")
