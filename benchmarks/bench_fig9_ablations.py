"""Figure 9: Siamese structure and leaf-node initialisation ablations.

Retrains three variants and reports test AUC.  Expected shape (paper:
classification+leaf-0 0.981 > leaf-1 0.973 > regression 0.944):

    classification head with zero leaves >= one leaves > regression head
"""

from repro.core import Asteria, AsteriaConfig, TrainConfig, Trainer

from benchmarks.conftest import emit_bench_json, write_result

VARIANTS = (
    ("Classification & Leaf-0", {"head": "classification", "leaf_init": "zero"}),
    ("Leaf-1", {"head": "classification", "leaf_init": "one"}),
    ("Regression", {"head": "regression", "leaf_init": "zero"}),
)


def test_fig9_ablations(benchmark, train_dev_pairs):
    train, dev = train_dev_pairs
    lines = [f"{'Variant':<26} {'best AUC':>9}"]
    aucs = {}
    for name, overrides in VARIANTS:
        model = Asteria(AsteriaConfig(**overrides))
        trainer = Trainer(model.siamese, TrainConfig(epochs=2, lr=0.05))
        history = trainer.train(train, dev)
        aucs[name] = history.best_auc
        lines.append(f"{name:<26} {history.best_auc:>9.4f}")
    write_result("fig9_ablations", "\n".join(lines))
    emit_bench_json("fig9_ablations", {"auc_by_variant": aucs})

    # Shape: the paper's chosen configuration is the best of the three.
    best = max(aucs.values())
    assert aucs["Classification & Leaf-0"] >= best - 0.02
    assert aucs["Classification & Leaf-0"] >= aucs["Regression"] - 0.01

    model = Asteria(AsteriaConfig())
    pair = train[0]
    trainer = Trainer(model.siamese, TrainConfig(epochs=1))
    benchmark(trainer.train_step, pair)
