"""Fault-tolerance machinery must be (nearly) free when nothing fails.

PR 7 threads two always-on mechanisms through the corpus query path:

* **checksum verification on open** -- every shard is hashed against the
  manifest before it is served (`EmbeddingStore.open(verify=True)`, the
  default);
* **disarmed failpoints** -- `faults.inject(...)` calls sit on the
  store-flush / cache-put / worker / server paths and must cost one
  module-flag check when no fault is armed.

This bench measures both on the same >= 10k-function corpus as
``bench_corpus_query.py``: the end-to-end open + batched top-k sweep
with verification on must stay within ``FAULT_BENCH_MAX_OVERHEAD``
(default 3%) of the verification-off run, rankings must be identical,
and one disarmed ``inject`` call must stay under a microsecond-scale
ceiling.
"""

import os
import time

import numpy as np

import repro.faults as faults
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.ann import BruteForceIndex
from repro.index.store import EmbeddingStore

from benchmarks.conftest import emit_bench_json, scaled, write_result

#: Allowed slowdown of the verified open+query path (0.03 = 3%); CI
#: runners with noisy disks can relax it via the environment.
MAX_OVERHEAD = float(os.environ.get("FAULT_BENCH_MAX_OVERHEAD", "0.03"))
#: Ceiling for one disarmed inject() call, in nanoseconds.
MAX_INJECT_NS = float(os.environ.get("FAULT_BENCH_MAX_INJECT_NS", "2000"))
N_QUERIES = 64
TOP_K = 10
#: Query batches served per store open -- a (short) serving session.
SWEEPS_PER_OPEN = 4
REPEATS = 5
INJECT_CALLS = 200_000


def _corpus(n: int, dim: int):
    """Clustered vectors + queries (same shape as bench_corpus_query)."""
    rng = np.random.default_rng(5)
    n_clusters = 50
    per = n // n_clusters
    centers = rng.normal(size=(n_clusters, dim)) * 2.0
    vectors = np.concatenate(
        [c + rng.normal(scale=0.2, size=(per, dim)) for c in centers]
    )
    counts = np.repeat(np.arange(n_clusters, dtype=np.int64), per)
    queries = [
        FunctionEncoding(
            name=f"q{i}", arch="x86", binary_name="query",
            vector=(centers[i % n_clusters]
                    + rng.normal(scale=0.15, size=dim)),
            callee_count=int(i % n_clusters),
        )
        for i in range(N_QUERIES)
    ]
    return vectors, counts, queries


def test_fault_overhead(benchmark, tmp_path):
    faults.clear()  # measure the disarmed fast path
    model = Asteria(AsteriaConfig())
    dim = model.config.hidden_dim
    n = max(10_000, scaled(20_000))
    vectors, counts, queries = _corpus(n, dim)

    root = tmp_path / "idx"
    store = EmbeddingStore.create(root, dim=dim, shard_size=2048)
    store.add_batch(
        FunctionEncoding(
            name=f"sub_{i:x}", arch="x86", binary_name="bin",
            vector=vectors[i], callee_count=int(counts[i]),
        )
        for i in range(n)
    )
    store.flush()

    def timed_open(verify: bool):
        t0 = time.perf_counter()
        opened = EmbeddingStore.open(root, verify=verify)
        return time.perf_counter() - t0, opened

    def timed_sweeps(opened):
        index = BruteForceIndex(
            model, opened.vectors(), opened.callee_counts()
        )
        t0 = time.perf_counter()
        for _ in range(SWEEPS_PER_OPEN):
            results = index.top_k_batch(queries, k=TOP_K)
        return time.perf_counter() - t0, results

    # warm the page cache and both code paths before timing anything
    timed_sweeps(timed_open(True)[1])
    open_s = {False: float("inf"), True: float("inf")}
    sweeps_s = float("inf")
    rankings = {}
    for _ in range(REPEATS):
        for verify in (False, True):
            elapsed, opened = timed_open(verify)
            open_s[verify] = min(open_s[verify], elapsed)
            elapsed, results = timed_sweeps(opened)
            sweeps_s = min(sweeps_s, elapsed)
            rankings[verify] = [[hit.row for hit in r] for r in results]
    # verification is a one-time open cost, amortized over the session's
    # query stream (a server never reopens the store per query).  The
    # delta between the two opens is small and stable; dividing by the
    # session makes the ratio robust to sweep-timing noise.
    verify_cost_s = max(0.0, open_s[True] - open_s[False])
    session_s = open_s[False] + sweeps_s
    overhead = verify_cost_s / session_s

    # verification changes nothing about what queries return
    assert rankings[True] == rankings[False]

    # one disarmed failpoint: a module-flag check, nanoseconds
    inject = faults.inject
    t0 = time.perf_counter()
    for _ in range(INJECT_CALLS):
        inject("bench.disarmed")
    inject_ns = (time.perf_counter() - t0) / INJECT_CALLS * 1e9

    lines = [
        f"corpus: {n} functions, dim {dim}; session = 1 open + "
        f"{SWEEPS_PER_OPEN} x {N_QUERIES}-query batched sweeps, "
        f"top-{TOP_K}, best of {REPEATS}",
        "",
        f"open(verify=False): {open_s[False] * 1000:7.1f} ms   "
        f"open(verify=True): {open_s[True] * 1000:7.1f} ms   "
        f"delta: {verify_cost_s * 1000:6.1f} ms",
        f"query stream ({SWEEPS_PER_OPEN} sweeps): {sweeps_s:7.3f} s",
        f"checksum-verification overhead per session: "
        f"{overhead * 100:6.2f} %  (required < {MAX_OVERHEAD * 100:.0f}%)",
        "",
        f"disarmed faults.inject():           {inject_ns:7.1f} ns/call  "
        f"(required < {MAX_INJECT_NS:.0f} ns)",
    ]
    write_result("fault_overhead", "\n".join(lines))
    emit_bench_json(
        "fault_overhead",
        {
            "n_functions": n,
            "n_queries": N_QUERIES,
            "sweeps_per_open": SWEEPS_PER_OPEN,
            "open_unverified_s": open_s[False],
            "open_verified_s": open_s[True],
            "verify_cost_s": verify_cost_s,
            "session_s": session_s,
            "verify_overhead": overhead,
            "inject_ns": inject_ns,
        },
        floors={
            "max_overhead": MAX_OVERHEAD,
            "max_inject_ns": MAX_INJECT_NS,
        },
    )

    assert overhead < MAX_OVERHEAD
    assert inject_ns < MAX_INJECT_NS

    benchmark(lambda: inject("bench.disarmed"))
