"""Figure 10(c): online-phase similarity-calculation time per pair.

Regenerates the online timing comparison on cached offline artefacts.
Expected shape (paper: 8e-9 s vs 6e-5 s vs 4e-3 s): Asteria's
vector-subtraction/product head is orders of magnitude faster than
Diaphora's big-integer fuzzy compare and at least as fast as Gemini's
cosine.  (Absolute numbers differ: the paper's 8e-9 s reflects batched
C-level ops; ours include Python call overhead.)
"""

from repro.evalsuite.timing import measure_online

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_fig10c_online_phase(benchmark, openssl, trained_asteria,
                             trained_gemini, asteria_scores):
    stats = measure_online(
        openssl, trained_asteria, trained_gemini,
        n_pairs=scaled(300), seed=4,
    )
    lines = [
        f"{'Approach':<10} {'seconds/pair':>13}",
        f"{'Asteria':<10} {stats.asteria_s:>13.3e}",
        f"{'Gemini':<10} {stats.gemini_s:>13.3e}",
        f"{'Diaphora':<10} {stats.diaphora_s:>13.3e}",
        "",
        f"speedup vs Diaphora: {stats.diaphora_s / stats.asteria_s:8.1f}x",
        f"speedup vs Gemini:   {stats.gemini_s / stats.asteria_s:8.1f}x",
    ]
    write_result("fig10c_online", "\n".join(lines))
    emit_bench_json(
        "fig10c_online",
        {
            "asteria_s_per_pair": stats.asteria_s,
            "gemini_s_per_pair": stats.gemini_s,
            "diaphora_s_per_pair": stats.diaphora_s,
            "speedup_vs_diaphora": stats.diaphora_s / stats.asteria_s,
            "speedup_vs_gemini": stats.gemini_s / stats.asteria_s,
        },
        floors={"min_speedup_vs_diaphora": 3.0},
    )

    # Shape: Asteria's online comparison is the fastest; Diaphora's
    # big-int digit comparison is the slowest by a wide margin.
    assert stats.asteria_s < stats.diaphora_s
    assert stats.asteria_s <= stats.gemini_s * 3  # same order or better
    assert stats.diaphora_s / stats.asteria_s > 3

    encodings = list(asteria_scores["encodings"].values())
    v1, v2 = encodings[0].vector, encodings[1].vector
    benchmark(trained_asteria.ast_similarity, v1, v2)
