"""Figure 6: ROC curves in the mixed cross-architecture evaluation.

Regenerates the headline comparison: Asteria vs Asteria-WOC (no
calibration) vs Gemini vs Diaphora on pairs drawn from any architecture
combination.  Expected shape (paper: 0.985 / 0.969 / 0.917 / 0.539):

    AUC(Asteria) >= AUC(Asteria-WOC) > AUC(Gemini) >> AUC(Diaphora)

The measured operation is Asteria's online similarity (encoding-vector
comparison), the step the paper reports as ~8e-9 s.
"""

import numpy as np

from repro.baselines.diaphora import DiaphoraMatcher
from repro.evalsuite.metrics import roc_auc, roc_curve, tpr_at_fpr

from benchmarks.conftest import emit_bench_json, write_result


def test_fig6_roc_mixed(benchmark, trained_asteria, trained_gemini,
                        openssl, eval_pairs, asteria_scores):
    labels = asteria_scores["labels"]
    scores = {
        "Asteria": asteria_scores["calibrated"],
        "Asteria-WOC": asteria_scores["woc"],
    }

    gemini_cache = {}

    def gemini_encode(fn):
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in gemini_cache:
            gemini_cache[key] = trained_gemini.encode(openssl.acfg_for(fn))
        return gemini_cache[key]

    scores["Gemini"] = [
        trained_gemini.similarity_from_vectors(
            gemini_encode(p.first), gemini_encode(p.second)
        )
        for p in eval_pairs
    ]
    diaphora = DiaphoraMatcher()
    features = {}

    def dia_features(fn):
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in features:
            features[key] = diaphora.features(fn.ast)
        return features[key]

    scores["Diaphora"] = [
        diaphora.similarity_from_features(
            dia_features(p.first), dia_features(p.second)
        )
        for p in eval_pairs
    ]

    lines = [f"{'Approach':<14} {'AUC':>7} {'TPR@5%FPR':>10}"]
    aucs = {}
    for name, series in scores.items():
        aucs[name] = roc_auc(labels, series)
        lines.append(
            f"{name:<14} {aucs[name]:>7.3f} "
            f"{tpr_at_fpr(labels, series, 0.05):>10.3f}"
        )
    lines.append("")
    lines.append("ROC points (fpr, tpr) at deciles, per approach:")
    for name, series in scores.items():
        fpr, tpr, _ = roc_curve(labels, series)
        deciles = np.interp(np.linspace(0, 1, 11), fpr, tpr)
        lines.append(f"  {name:<12} " + " ".join(f"{v:.2f}" for v in deciles))
    write_result("fig6_roc_mixed", "\n".join(lines))
    emit_bench_json(
        "fig6_roc_mixed",
        {
            "n_pairs": len(labels),
            "auc": {name: auc for name, auc in aucs.items()},
            "tpr_at_5pct_fpr": {
                name: tpr_at_fpr(labels, series, 0.05)
                for name, series in scores.items()
            },
        },
        floors={"max_diaphora_auc": 0.75},
    )

    # The paper's ordering must hold.
    assert aucs["Asteria"] >= aucs["Asteria-WOC"] - 0.01
    assert aucs["Asteria-WOC"] > aucs["Gemini"]
    assert aucs["Gemini"] > aucs["Diaphora"]
    assert aucs["Diaphora"] < 0.75  # near-chance, as in the paper

    encodings = asteria_scores["encodings"]
    vectors = list(encodings.values())
    v1, v2 = vectors[0].vector, vectors[1].vector
    benchmark(trained_asteria.ast_similarity, v1, v2)
