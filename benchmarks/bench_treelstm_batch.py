"""Level-batched Tree-LSTM: encode throughput vs the sequential reference.

The paper's offline phase is dominated by per-node Tree-LSTM encoding
(Figure 10b, A-E); the level-batched engine stacks same-level nodes across
many trees into fixed-block GEMMs.  This bench measures, on the synthetic
buildroot corpus:

* **throughput** -- trees/second sequential vs batched at batch sizes
  {1, 8, 64, 256} (batch 64 must be >= ``MIN_SPEEDUP_AT_64`` faster);
* **determinism** -- batched encodings must be bit-for-bit identical across
  every batch size (the fixed-GEMM-block property);
* **AST-size buckets** -- per-bucket speedup at batch 64, the batched
  analogue of Figure 10b's encode-time-by-size curve;

* **float32 fast path** -- raw trees/s of the single-precision inference
  path at batch 64 and 256 (best-of-``TREELSTM_BENCH_REPS`` timing), which
  must clear the absolute ``TREELSTM_BENCH_MIN_TREES_PER_S`` floor and stay
  monotone from 64 to 256 (node-budget chunking keeps the working set
  cache-resident, so bigger batches must not fall off a cliff);

and cross-checks the batched vectors against the sequential reference.

``TREELSTM_BENCH_MIN_SPEEDUP`` overrides the throughput floor (the CI
perf-smoke step runs at reduced scale, where fixed per-call overheads eat
into the ratio); ``TREELSTM_BENCH_MONOTONE_MIN`` relaxes the @64->@256
monotonicity floor below its default 0.9 (single-core timing noise).
"""

import os
import time

import numpy as np

from repro.evalsuite.timing import corpus_trees
from repro.nn.tensor import no_grad

from benchmarks.conftest import emit_bench_json, scaled, write_result

BATCH_SIZES = (1, 8, 64, 256)
MIN_SPEEDUP_AT_64 = float(os.environ.get("TREELSTM_BENCH_MIN_SPEEDUP", "5.0"))
MIN_TREES_PER_S = float(
    os.environ.get("TREELSTM_BENCH_MIN_TREES_PER_S", "1100")
)
MONOTONE_MIN = float(os.environ.get("TREELSTM_BENCH_MONOTONE_MIN", "0.9"))
REPS = int(os.environ.get("TREELSTM_BENCH_REPS", "5"))
MIN_TREES = 512
SIZE_BUCKETS = ((0, 50), (50, 100), (100, 200), (200, 10 ** 9))


def _best_of(fn, reps):
    """Run ``fn`` ``reps`` times; return (last result, fastest seconds).

    Best-of timing filters the scheduler noise that dominates single-run
    measurements on a shared box -- the minimum is the least-interfered
    observation of the same deterministic computation.
    """
    result, best = None, float("inf")
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def _corpus_trees(dataset, model):
    """Preprocessed trees from every corpus function, tiled to MIN_TREES."""
    trees = corpus_trees(dataset, model.config.min_ast_size)
    assert trees, "corpus produced no encodable functions"
    base = len(trees)
    while len(trees) < MIN_TREES:
        trees.append(trees[len(trees) % base])
    return trees


def test_treelstm_batch_throughput(benchmark, buildroot, trained_asteria):
    trees = _corpus_trees(buildroot, trained_asteria)
    sizes = np.array([tree.size() for tree in trees])

    started = time.perf_counter()
    with no_grad():
        sequential = np.stack(
            [trained_asteria.encoder(tree).data for tree in trees]
        )
    sequential_s = time.perf_counter() - started
    sequential_rate = len(trees) / sequential_s

    lines = [
        f"corpus: {len(trees)} trees "
        f"(mean {sizes.mean():.0f} nodes, max {sizes.max()})",
        "",
        f"{'path':<16} {'trees/s':>10} {'speedup':>9}",
        f"{'sequential':<16} {sequential_rate:>10.1f} {'1.0x':>9}",
    ]
    batched_results = {}
    batched_rates = {}
    for batch_size in BATCH_SIZES:
        # best-of-reps at the sizes the monotonicity floor compares
        reps = REPS if batch_size >= 64 else 1
        vectors, batched_s = _best_of(
            lambda: trained_asteria.encode_batch(
                trees, batch_size=batch_size
            ),
            reps,
        )
        batched_results[batch_size] = vectors
        batched_rates[batch_size] = len(trees) / batched_s
        lines.append(
            f"{'batched @' + str(batch_size):<16} "
            f"{batched_rates[batch_size]:>10.1f} "
            f"{sequential_s / batched_s:>8.1f}x"
        )

    # The float32 fast path, timed over a precompiled plan: compilation
    # is a one-time cost the pipeline's persistent ctrees cache pays
    # once per corpus, so steady-state throughput is the encode alone.
    f32_rates = {}
    f32_vectors = None
    for batch_size in (64, 256):
        plan = trained_asteria.compile_plan(trees, batch_size)
        f32_vectors, f32_s = _best_of(
            lambda: trained_asteria.encode_plan(plan, dtype="float32"),
            REPS,
        )
        f32_rates[batch_size] = len(trees) / f32_s
        lines.append(
            f"{'float32 @' + str(batch_size):<16} "
            f"{f32_rates[batch_size]:>10.1f} "
            f"{f32_rates[batch_size] / sequential_rate:>8.1f}x   "
            f"(warm plan)"
        )

    lines.append("")
    lines.append("speedup @64 by AST-size bucket:")
    for low, high in SIZE_BUCKETS:
        mask = (sizes >= low) & (sizes < high)
        if not mask.any():
            continue
        bucket = [tree for tree, m in zip(trees, mask) if m]
        with no_grad():
            started = time.perf_counter()
            for tree in bucket:
                trained_asteria.encoder.encode_states(tree)
            bucket_seq_s = time.perf_counter() - started
        started = time.perf_counter()
        trained_asteria.encode_batch(bucket, batch_size=64)
        bucket_batched_s = time.perf_counter() - started
        label = f"[{low}, {high if high < 10 ** 9 else 'inf'})"
        lines.append(
            f"  size {label:<12} {bucket_seq_s / bucket_batched_s:>6.1f}x "
            f"over {len(bucket)} trees"
        )

    speedup_64 = batched_rates[64] / sequential_rate
    monotone_64_256 = batched_rates[256] / batched_rates[64]
    f32_monotone = f32_rates[256] / f32_rates[64]
    f32_peak = max(f32_rates.values())
    lines.append("")
    lines.append(
        f"speedup @64: {speedup_64:.1f}x "
        f"(required >= {MIN_SPEEDUP_AT_64:g}x)"
    )
    lines.append(
        f"monotone @64->@256: float64 {monotone_64_256:.3f}, "
        f"float32 {f32_monotone:.3f} (floor {MONOTONE_MIN:g})"
    )
    lines.append(
        f"float32 peak: {f32_peak:.1f} trees/s "
        f"(floor {MIN_TREES_PER_S:g})"
    )
    # write the diagnostic table before any assert so the CI artifact
    # survives every failure class, not just the throughput one
    write_result("treelstm_batch", "\n".join(lines))
    emit_bench_json(
        "treelstm_batch",
        {
            "n_trees": len(trees),
            "sequential_trees_per_s": sequential_rate,
            "batched_trees_per_s": {
                str(size): rate for size, rate in batched_rates.items()
            },
            "float32_trees_per_s": {
                str(size): rate for size, rate in f32_rates.items()
            },
            "speedup_at_64": speedup_64,
            "monotone_64_to_256": monotone_64_256,
            "float32_monotone_64_to_256": f32_monotone,
            "float32_peak_trees_per_s": f32_peak,
        },
        floors={
            "min_speedup_at_64": MIN_SPEEDUP_AT_64,
            "min_trees_per_s": MIN_TREES_PER_S,
            "monotone_min": MONOTONE_MIN,
        },
    )

    # Bit-for-bit determinism: the fixed GEMM blocks make the encoding
    # independent of how the corpus was chunked into batches.
    reference = batched_results[BATCH_SIZES[0]]
    for batch_size in BATCH_SIZES[1:]:
        assert np.array_equal(reference, batched_results[batch_size]), (
            f"batch size {batch_size} produced different bytes than "
            f"batch size {BATCH_SIZES[0]}"
        )
    # ... and numerically equivalent to the sequential reference.
    np.testing.assert_allclose(reference, sequential, atol=1e-10)
    # The float32 path tracks the float64 reference to single precision.
    np.testing.assert_allclose(f32_vectors, reference, atol=1e-5)

    assert speedup_64 >= MIN_SPEEDUP_AT_64
    assert monotone_64_256 >= MONOTONE_MIN, (
        f"float64 throughput fell off going @64 -> @256: "
        f"{batched_rates[64]:.1f} -> {batched_rates[256]:.1f} trees/s "
        f"(ratio {monotone_64_256:.3f} < {MONOTONE_MIN:g})"
    )
    assert f32_monotone >= MONOTONE_MIN, (
        f"float32 throughput fell off going @64 -> @256: "
        f"{f32_rates[64]:.1f} -> {f32_rates[256]:.1f} trees/s "
        f"(ratio {f32_monotone:.3f} < {MONOTONE_MIN:g})"
    )
    assert f32_peak >= MIN_TREES_PER_S, (
        f"float32 fast path peaked at {f32_peak:.1f} trees/s, below the "
        f"{MIN_TREES_PER_S:g} floor"
    )

    chunk = trees[:scaled(64)]
    benchmark(lambda: trained_asteria.encode_batch(chunk, batch_size=64))
