"""Level-batched Tree-LSTM: encode throughput vs the sequential reference.

The paper's offline phase is dominated by per-node Tree-LSTM encoding
(Figure 10b, A-E); the level-batched engine stacks same-level nodes across
many trees into fixed-block GEMMs.  This bench measures, on the synthetic
buildroot corpus:

* **throughput** -- trees/second sequential vs batched at batch sizes
  {1, 8, 64, 256} (batch 64 must be >= ``MIN_SPEEDUP_AT_64`` faster);
* **determinism** -- batched encodings must be bit-for-bit identical across
  every batch size (the fixed-GEMM-block property);
* **AST-size buckets** -- per-bucket speedup at batch 64, the batched
  analogue of Figure 10b's encode-time-by-size curve;

and cross-checks the batched vectors against the sequential reference.

``TREELSTM_BENCH_MIN_SPEEDUP`` overrides the throughput floor (the CI
perf-smoke step runs at reduced scale, where fixed per-call overheads eat
into the ratio).
"""

import os
import time

import numpy as np

from repro.evalsuite.timing import corpus_trees
from repro.nn.tensor import no_grad

from benchmarks.conftest import emit_bench_json, scaled, write_result

BATCH_SIZES = (1, 8, 64, 256)
MIN_SPEEDUP_AT_64 = float(os.environ.get("TREELSTM_BENCH_MIN_SPEEDUP", "5.0"))
MIN_TREES = 512
SIZE_BUCKETS = ((0, 50), (50, 100), (100, 200), (200, 10 ** 9))


def _corpus_trees(dataset, model):
    """Preprocessed trees from every corpus function, tiled to MIN_TREES."""
    trees = corpus_trees(dataset, model.config.min_ast_size)
    assert trees, "corpus produced no encodable functions"
    base = len(trees)
    while len(trees) < MIN_TREES:
        trees.append(trees[len(trees) % base])
    return trees


def test_treelstm_batch_throughput(benchmark, buildroot, trained_asteria):
    trees = _corpus_trees(buildroot, trained_asteria)
    sizes = np.array([tree.size() for tree in trees])

    started = time.perf_counter()
    with no_grad():
        sequential = np.stack(
            [trained_asteria.encoder(tree).data for tree in trees]
        )
    sequential_s = time.perf_counter() - started
    sequential_rate = len(trees) / sequential_s

    lines = [
        f"corpus: {len(trees)} trees "
        f"(mean {sizes.mean():.0f} nodes, max {sizes.max()})",
        "",
        f"{'path':<16} {'trees/s':>10} {'speedup':>9}",
        f"{'sequential':<16} {sequential_rate:>10.1f} {'1.0x':>9}",
    ]
    batched_results = {}
    batched_rates = {}
    for batch_size in BATCH_SIZES:
        started = time.perf_counter()
        vectors = trained_asteria.encode_batch(trees, batch_size=batch_size)
        batched_s = time.perf_counter() - started
        batched_results[batch_size] = vectors
        batched_rates[batch_size] = len(trees) / batched_s
        lines.append(
            f"{'batched @' + str(batch_size):<16} "
            f"{batched_rates[batch_size]:>10.1f} "
            f"{sequential_s / batched_s:>8.1f}x"
        )

    lines.append("")
    lines.append("speedup @64 by AST-size bucket:")
    for low, high in SIZE_BUCKETS:
        mask = (sizes >= low) & (sizes < high)
        if not mask.any():
            continue
        bucket = [tree for tree, m in zip(trees, mask) if m]
        with no_grad():
            started = time.perf_counter()
            for tree in bucket:
                trained_asteria.encoder.encode_states(tree)
            bucket_seq_s = time.perf_counter() - started
        started = time.perf_counter()
        trained_asteria.encode_batch(bucket, batch_size=64)
        bucket_batched_s = time.perf_counter() - started
        label = f"[{low}, {high if high < 10 ** 9 else 'inf'})"
        lines.append(
            f"  size {label:<12} {bucket_seq_s / bucket_batched_s:>6.1f}x "
            f"over {len(bucket)} trees"
        )

    speedup_64 = batched_rates[64] / sequential_rate
    lines.append("")
    lines.append(
        f"speedup @64: {speedup_64:.1f}x "
        f"(required >= {MIN_SPEEDUP_AT_64:g}x)"
    )
    # write the diagnostic table before any assert so the CI artifact
    # survives every failure class, not just the throughput one
    write_result("treelstm_batch", "\n".join(lines))
    emit_bench_json(
        "treelstm_batch",
        {
            "n_trees": len(trees),
            "sequential_trees_per_s": sequential_rate,
            "batched_trees_per_s": {
                str(size): rate for size, rate in batched_rates.items()
            },
            "speedup_at_64": speedup_64,
        },
        floors={"min_speedup_at_64": MIN_SPEEDUP_AT_64},
    )

    # Bit-for-bit determinism: the fixed GEMM blocks make the encoding
    # independent of how the corpus was chunked into batches.
    reference = batched_results[BATCH_SIZES[0]]
    for batch_size in BATCH_SIZES[1:]:
        assert np.array_equal(reference, batched_results[batch_size]), (
            f"batch size {batch_size} produced different bytes than "
            f"batch size {BATCH_SIZES[0]}"
        )
    # ... and numerically equivalent to the sequential reference.
    np.testing.assert_allclose(reference, sequential, atol=1e-10)

    assert speedup_64 >= MIN_SPEEDUP_AT_64

    chunk = trees[:scaled(64)]
    benchmark(lambda: trained_asteria.encode_batch(chunk, batch_size=64))
