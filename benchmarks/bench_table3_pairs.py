"""Table III: number of function pairs per architecture combination.

Regenerates the pair-count table for the six combinations used in training
(x86-ARM, x86-PPC, x86-x64, ARM-PPC, ARM-x64, PPC-x64).  The measured
operation is cross-architecture pair construction itself.
"""

from collections import Counter

from repro.core import build_cross_arch_pairs
from repro.core.pairs import ARCH_COMBINATIONS

from benchmarks.conftest import emit_bench_json, scaled, write_result


def test_table3_pair_counts(benchmark, buildroot):
    pairs = build_cross_arch_pairs(
        buildroot.functions, n_pairs_per_combo=scaled(40), seed=1
    )
    counts = Counter(tuple(sorted(p.arch_combo)) for p in pairs)
    lines = [f"{'Arch-Comb':<12} {'# of pairs':>10}"]
    for combo in ARCH_COMBINATIONS:
        key = tuple(sorted(combo))
        lines.append(f"{combo[0]}-{combo[1]:<8} {counts[key]:>10}")
    lines.append(f"{'total':<12} {len(pairs):>10}")
    write_result("table3_pairs", "\n".join(lines))
    emit_bench_json(
        "table3_pairs",
        {
            "total_pairs": len(pairs),
            "pairs_by_combo": {
                f"{combo[0]}-{combo[1]}": counts[tuple(sorted(combo))]
                for combo in ARCH_COMBINATIONS
            },
        },
    )

    # Shape: all six combinations are populated and roughly balanced
    # (the paper's counts differ only because of the <5-node filter).
    assert len(counts) == 6
    assert max(counts.values()) <= 2 * min(counts.values())

    benchmark(
        build_cross_arch_pairs, buildroot.functions, scaled(10), seed=2
    )
