"""Shared benchmark fixtures: corpora and trained models, built once.

Every experiment regenerator in this directory consumes these fixtures.
``REPRO_SCALE`` (float, default 1) scales corpus sizes up; the defaults are
laptop-sized (the paper's corpora are millions of functions -- see
DESIGN.md for the scaling discussion).

Each bench writes the regenerated table/figure to
``benchmarks/results/<name>.txt`` in addition to printing it, so results
survive pytest's output capture.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

from repro.baselines.gemini.model import Gemini, GeminiConfig, GeminiPair
from repro.core import (
    Asteria,
    AsteriaConfig,
    TrainConfig,
    Trainer,
    build_cross_arch_pairs,
    to_tree_pairs,
)
from repro.core.pairs import split_pairs
from repro.evalsuite.datasets import build_buildroot_dataset, build_openssl_dataset

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def scaled(base: int, minimum: int = 1) -> int:
    return max(minimum, int(round(base * SCALE)))


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(f"\n=== {name} ===\n{text}")


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _total_ram_bytes():
    """Physical memory of the host, or ``None`` where sysconf lacks it."""
    try:
        return int(
            os.sysconf("SC_PAGE_SIZE") * os.sysconf("SC_PHYS_PAGES")
        )
    except (ValueError, OSError, AttributeError):
        return None


def emit_bench_json(name: str, metrics: dict, floors: dict = None) -> None:
    """Write ``results/BENCH_<name>.json`` -- the machine-readable twin
    of :func:`write_result`, so perf trajectories diff across revisions.

    Shared schema (``schema_version`` 1)::

        {"schema_version": 1, "bench": <name>, "git_rev": <sha|unknown>,
         "created_unix": <float>, "scale": <REPRO_SCALE>,
         "cpu_count": <int|null>, "ram_bytes": <int|null>,
         "metrics": {...measured numbers...},
         "floors": {...the floors the bench asserts against...}}

    ``cpu_count`` / ``ram_bytes`` pin the host the numbers came from --
    a throughput trajectory diffed across revisions is meaningless if
    the machine changed underneath it.

    Call it *before* the bench's asserts (like :func:`write_result`), so
    the artifact survives a floor regression -- that failing run's
    numbers are exactly the ones worth diffing.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema_version": 1,
        "bench": name,
        "git_rev": _git_rev(),
        "created_unix": time.time(),
        "scale": SCALE,
        "cpu_count": os.cpu_count(),
        "ram_bytes": _total_ram_bytes(),
        "metrics": metrics,
        "floors": floors or {},
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def buildroot():
    """Training corpus (the paper's Buildroot dataset analogue)."""
    return build_buildroot_dataset(n_packages=scaled(6), seed=7)


@pytest.fixture(scope="session")
def openssl():
    """Evaluation corpus (the paper's OpenSSL dataset analogue)."""
    return build_openssl_dataset(n_functions=scaled(30), seed=9)


@pytest.fixture(scope="session")
def train_dev_pairs(buildroot):
    pairs = to_tree_pairs(
        build_cross_arch_pairs(buildroot.functions, scaled(20), seed=1)
    )
    return split_pairs(pairs, 0.85, seed=2)


@pytest.fixture(scope="session")
def trained_asteria(train_dev_pairs):
    """The main Asteria model (paper defaults: dim 16, zero leaves,
    classification head), trained on the buildroot pairs."""
    train, dev = train_dev_pairs
    model = Asteria(AsteriaConfig())
    trainer = Trainer(model.siamese, TrainConfig(epochs=3, lr=0.05))
    trainer.train(train, dev)
    return model


@pytest.fixture(scope="session")
def trained_gemini(buildroot):
    labeled = build_cross_arch_pairs(buildroot.functions, scaled(20), seed=4)
    pairs = [
        GeminiPair(
            buildroot.acfg_for(p.first), buildroot.acfg_for(p.second), p.label
        )
        for p in labeled
    ]
    cut = int(len(pairs) * 0.85)
    model = Gemini(GeminiConfig())
    model.train(pairs[:cut], pairs[cut:], epochs=4, lr=0.005)
    return model


@pytest.fixture(scope="session")
def eval_pairs(openssl):
    """Labelled cross-architecture pairs from the evaluation corpus."""
    return build_cross_arch_pairs(openssl.functions, scaled(20), seed=3)


@pytest.fixture(scope="session")
def asteria_scores(trained_asteria, eval_pairs):
    """Cached encodings + calibrated/uncalibrated scores for eval pairs."""
    encodings = {}

    def encode(fn):
        key = (fn.arch, fn.binary_name, fn.name)
        if key not in encodings:
            encodings[key] = trained_asteria.encode_function(fn)
        return encodings[key]

    labels = [1 if p.label > 0 else 0 for p in eval_pairs]
    calibrated = [
        trained_asteria.similarity(encode(p.first), encode(p.second))
        for p in eval_pairs
    ]
    woc = [
        trained_asteria.similarity(
            encode(p.first), encode(p.second), calibrate=False
        )
        for p in eval_pairs
    ]
    return {"labels": labels, "calibrated": calibrated, "woc": woc,
            "encodings": encodings, "encode": encode}
